"""Aggregate stored campaign records into the harness Table/Figure machinery.

The store speaks plain dicts; the experiment reports speak
:class:`~repro.harness.tables.Table` and
:class:`~repro.harness.figures.Figure`.  This module is the bridge: group
records by spec fields, reduce a measurement per group, and emit tables,
scaling figures, or reconstructed :class:`~repro.harness.runner.Trial`
objects for code that predates the engine.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..harness.figures import Figure
from ..harness.tables import Table
from .store import trial_from_record

__all__ = [
    "field_of",
    "group_records",
    "aggregate",
    "summary_table",
    "scaling_figure",
    "trials_from_records",
]

_AGGREGATES: dict[str, Callable[[list[float]], float]] = {
    "mean": lambda xs: sum(xs) / len(xs),
    "max": max,
    "min": min,
    "sum": sum,
}


def field_of(record: dict, field: str) -> Any:
    """Look a field up in the record, then its spec, then its result.

    Spec fields win over result fields so grouping by ``n`` uses the
    nominal grid size, keeping cells aligned even for generators that
    round ``n`` (e.g. ``grid`` snaps to the nearest square).
    """
    for layer in (record, record.get("spec", {}), record.get("result", {})):
        if field in layer:
            return layer[field]
    raise KeyError(f"record has no field {field!r}")


def group_records(
    records: Iterable[dict], group_by: Sequence[str]
) -> dict[tuple, list[dict]]:
    """Group records by a tuple of spec/result fields, insertion-ordered."""
    groups: dict[tuple, list[dict]] = {}
    for record in records:
        key = tuple(field_of(record, f) for f in group_by)
        groups.setdefault(key, []).append(record)
    return groups


def aggregate(
    records: Iterable[dict],
    group_by: Sequence[str],
    value: str,
    agg: str = "mean",
) -> dict[tuple, float]:
    """Reduce one measurement per group (``mean``/``max``/``min``/``sum``)."""
    try:
        reducer = _AGGREGATES[agg]
    except KeyError:
        raise ValueError(
            f"unknown aggregate {agg!r}; choose from {sorted(_AGGREGATES)}"
        ) from None
    return {
        key: reducer([field_of(r, value) for r in group])
        for key, group in group_records(records, group_by).items()
    }


def summary_table(
    records: Iterable[dict],
    group_by: Sequence[str] = ("algorithm", "topology", "n", "scenario"),
    values: Sequence[str] = ("moves", "rounds"),
    agg: str = "mean",
    title: str | None = None,
) -> Table:
    """One row per group: the group key, trial count, aggregated values."""
    groups = group_records(records, group_by)
    columns = [*group_by, "trials", *(f"{v} ({agg})" for v in values)]
    table = Table(title or f"campaign summary ({agg} per cell)", columns)
    reducer = _AGGREGATES[agg]
    for key, group in groups.items():
        cells = [reducer([field_of(r, v) for r in group]) for v in values]
        table.add_row(*key, len(group), *cells)
    return table


def scaling_figure(
    records: Iterable[dict],
    x: str = "n",
    y: str = "moves",
    series: str = "algorithm",
    agg: str = "mean",
    title: str | None = None,
    loglog: bool = False,
) -> Figure:
    """A figure of ``y`` vs ``x``, one series per distinct ``series`` value."""
    fig = Figure(title or f"{y} vs {x}", xlabel=x, ylabel=y, loglog=loglog)
    for (name, xv), value in aggregate(records, (series, x), y, agg).items():
        fig.add_point(str(name), xv, value)
    return fig


def trials_from_records(records: Iterable[dict]) -> list:
    """Rebuild :class:`~repro.harness.runner.Trial` objects from records."""
    return [trial_from_record(r) for r in records]
