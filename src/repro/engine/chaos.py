"""Deterministic failure injection for pool-robustness tests.

The supervised executor (:mod:`repro.engine.pool`) must survive worker
crashes and runaway trials; proving that in CI needs a way to make a
*specific* trial crash or hang on demand, in a real worker process,
without test-only code paths in the executor itself.  The hook is an
environment variable read at the top of every supervised worker:

``REPRO_CHAOS`` — ``;``-separated directives of the form
``<action>:<key-substring>[:<times>]``:

* ``crash:unison`` — any worker whose unit contains a trial key with
  substring ``unison`` dies with SIGKILL before executing;
* ``timeout:trial=2`` — the matching worker hangs (sleeps an hour), so
  the parent's deadline fires;
* ``crash:unison:1`` — only the first matching worker trips (so a retry
  then succeeds).  The once-only bookkeeping needs ``REPRO_CHAOS_DIR``
  (a scratch directory shared by the worker processes); without it,
  ``times`` is ignored and every match trips.

The variable is unset in normal operation, costing one ``os.environ``
lookup per unit.  Chaos is injected *before* any trial executes, so a
tripped worker can never have landed partial results.
"""

from __future__ import annotations

import os
import signal
import time

__all__ = ["trip"]


def trip(keys) -> None:
    """Crash or hang this process if ``REPRO_CHAOS`` matches a trial key."""
    raw = os.environ.get("REPRO_CHAOS")
    if not raw:
        return
    for directive in raw.split(";"):
        parts = directive.strip().split(":")
        if len(parts) < 2 or not parts[1]:
            continue
        action, substring = parts[0].strip(), parts[1]
        if action not in ("crash", "timeout"):
            continue
        if not any(substring in key for key in keys):
            continue
        times = int(parts[2]) if len(parts) > 2 and parts[2] else None
        if times is not None and not _claim(action, substring, times):
            continue
        if action == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(3600)  # "timeout": outlive any sane deadline


def _claim(action: str, substring: str, times: int) -> bool:
    """Atomically claim one of ``times`` trip slots via marker files."""
    scratch = os.environ.get("REPRO_CHAOS_DIR")
    if not scratch:
        return True
    safe = "".join(c if c.isalnum() else "_" for c in substring)
    for i in range(times):
        path = os.path.join(scratch, f"chaos-{action}-{safe}-{i}")
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            continue
    return False
