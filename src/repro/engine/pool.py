"""Trial executor: batched cells, multiprocessing fan-out, serial fallback.

``run_specs`` drives a list of :class:`~repro.engine.campaign.TrialSpec`
descriptors to completion.  Replicate trials that share a grid cell are
*batched* (``batch="auto"``): the whole cell runs as one tiled
multi-trial simulation (:func:`repro.harness.runner.run_trial_batch`),
one guard evaluation serving every replicate per step.  With
``workers >= 2`` the execution units — batches and leftover single
trials — fan out to a ``multiprocessing.Pool`` via ``imap_unordered``
(chunked to amortize IPC); with ``workers <= 1`` they run in-process,
which keeps debugging, coverage, and tracing trivial.  Either way results
stream back to the parent, which is the *only* writer of the result
store — workers compute, the parent persists, so no file locking is
needed.

Because every trial's seed derives from its descriptor (not from
execution order, worker count, or batch shape), all paths produce
byte-identical records.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Sequence

from ..telemetry import phases as telemetry
from .campaign import TrialSpec
from .seeds import derive_seed
from .store import SCHEMA_VERSION, ResultStore, trial_to_dict

__all__ = [
    "execute_trial",
    "execute_batch",
    "run_specs",
    "default_chunksize",
    "FailurePolicy",
]

#: ``progress(done, total, record)`` — invoked in the parent exactly once
#: per landed trial (and per skipped/streamed record on resume paths).
ProgressFn = Callable[[int, int, dict], None]

#: Seconds between ``heartbeat`` events on an event sink (wall-clock
#: throttle; the check itself runs once per landed record).
HEARTBEAT_EVERY = 10.0


@dataclass(frozen=True)
class FailurePolicy:
    """Graceful degradation for campaign execution.

    Without a policy, ``run_specs`` keeps its historical contract: the
    first failing unit re-raises mid-sweep.  With one, execution moves
    to a *supervised* executor — one short-lived OS process per
    in-flight unit, results returned over a pipe — which survives what
    a ``multiprocessing.Pool`` cannot: a worker dying (``kill -9``,
    OOM, segfault) or hanging past its deadline.  A failing unit is

    1. **retried** on the same tier up to ``max_retries`` times with
       exponential backoff (``backoff * 2**attempt`` seconds), then
    2. **degraded** one rung down the ladder *batch → serial →
       dict* — a failing batch splits into single trials, a failing
       single trial re-runs on the dict reference engine (an execution
       option, so its key and record bytes are unchanged), then
    3. **quarantined**: a ``trial_failed`` event carrying ``reason``
       (``crash``/``timeout``/``error``/``budget``) and ``retries``
       is emitted, the failure is reported to the caller, and the rest
       of the grid keeps running.  Siblings of a failed replicate land
       exactly once.

    ``trial_timeout`` is a per-trial wall-clock deadline in seconds
    (a batch unit's deadline scales with its replicate count); ``None``
    disables deadlines.  Budget exhaustion (``NotStabilized``) is
    deterministic, so it quarantines immediately — retrying cannot
    change a seeded trial's outcome.
    """

    trial_timeout: float | None = None
    max_retries: int = 2
    backoff: float = 0.5
    degrade: bool = True

    def __post_init__(self):
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ValueError("trial_timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")


def execute_trial(spec: TrialSpec, campaign_seed: int, campaign: str = "") -> dict:
    """Run one trial and return its store record.

    Safe to call in any process: the seed comes from the descriptor hash,
    and the record contains nothing execution-dependent (no timestamps,
    pids, or hostnames), so parallel and serial runs are byte-identical.
    """
    # Imported lazily — the harness experiments import the engine, so a
    # module-level import here would be circular.
    from ..harness.runner import run_trial

    seed = derive_seed(campaign_seed, spec.key())
    return _make_record(
        spec, seed, run_trial(spec, seed=seed), campaign_seed, campaign
    )


def execute_batch(
    specs: Sequence[TrialSpec], campaign_seed: int, campaign: str = ""
) -> list[dict]:
    """Run one grid cell's replicates as a batch; fall back per-trial.

    Record-identical to ``[execute_trial(s, …) for s in specs]`` — the
    batched runner consumes each trial's derived seed in serial order.
    If the cell turns out not to be batchable after all
    (:class:`~repro.core.exceptions.UnbatchableError`: no kernel program
    for this instance, unexpected params), the replicates run serially
    instead; any other exception is a genuine defect and propagates.
    A budget-exhausted replicate re-raises its ``NotStabilized`` with
    the stabilizing siblings' finished store records attached as
    ``partial_records`` (its ``partial`` holds the raw ``(index,
    Trial)`` pairs), so callers can persist them without re-running.
    """
    from ..core.exceptions import UnbatchableError

    try:
        records, error = _batch_records(specs, campaign_seed, campaign)
    except UnbatchableError:
        return [execute_trial(spec, campaign_seed, campaign) for spec in specs]
    if error is not None:
        error.partial_records = records
        raise error
    return records


def _make_record(
    spec: TrialSpec, seed: int, trial, campaign_seed: int, campaign: str
) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "campaign": campaign,
        "campaign_seed": campaign_seed,
        "key": spec.key(),
        "seed": seed,
        "spec": spec.to_dict(),
        "result": trial_to_dict(trial),
    }


def _batch_records(
    specs: Sequence[TrialSpec], campaign_seed: int, campaign: str
) -> tuple[list[dict], Exception | None]:
    """One cell's ``(records, error)`` via the tiled batch runner.

    A ``NotStabilized`` replicate does not discard the cell: the batch's
    own per-trial outcomes already hold the stabilizing siblings'
    results (carried in the exception's ``partial`` attribute), so those
    records are returned alongside the failure — no serial re-run.
    ``UnbatchableError`` propagates (the caller falls back to serial
    trials); any other exception is a genuine defect and propagates too.
    """
    # Imported lazily — the harness experiments import the engine, so a
    # module-level import here would be circular.
    from ..core.exceptions import NotStabilized
    from ..harness.runner import run_trial_batch

    specs = list(specs)
    seeds = [derive_seed(campaign_seed, spec.key()) for spec in specs]
    try:
        indexed = list(enumerate(run_trial_batch(specs, seeds)))
        error: Exception | None = None
    except NotStabilized as exc:
        indexed = list(exc.partial)
        error = exc
    records = [
        _make_record(specs[i], seeds[i], trial, campaign_seed, campaign)
        for i, trial in indexed
    ]
    return records, error


def _execution_units(
    specs: Sequence[TrialSpec], batch: bool
) -> list[tuple[str, Any]]:
    """Group specs into ``("batch", cell-specs)`` / ``("single", spec)``."""
    if not batch:
        return [("single", spec) for spec in specs]
    from ..harness.runner import can_batch

    cells: dict[str, list[TrialSpec]] = {}
    order: list[str] = []
    for spec in specs:
        key = spec.cell_key()
        if key not in cells:
            cells[key] = []
            order.append(key)
        cells[key].append(spec)
    units: list[tuple[str, Any]] = []
    for key in order:
        cell = cells[key]
        # Every replicate must be batchable: execution options such as
        # backend="dict" are excluded from cell_key(), so one replicate
        # explicitly requesting the dict engine must not be silently
        # batched onto the kernel with its siblings.
        if len(cell) > 1 and all(can_batch(spec) for spec in cell):
            units.append(("batch", tuple(cell)))
        else:
            units.extend(("single", spec) for spec in cell)
    return units


def _serial_records(
    specs: Sequence[TrialSpec],
    campaign_seed: int,
    campaign: str,
) -> tuple[list[dict], Exception | None]:
    """Serial per-trial records, stopping at a ``NotStabilized`` trial."""
    from ..core.exceptions import NotStabilized

    records: list[dict] = []
    error: Exception | None = None
    try:
        for spec in specs:
            records.append(execute_trial(spec, campaign_seed, campaign))
    except NotStabilized as serial_exc:
        error = serial_exc
    return records, error


def _worker(
    args: tuple[str, Any, int, str]
) -> tuple[list[dict], Exception | None, dict]:
    """Run one execution unit; returns ``(records, error, meta)``.

    ``NotStabilized`` is not a defect — one replicate ran out of budget.
    A batch hitting it hands the stabilizing siblings' records to the
    parent (and the store) *alongside* the failure — the batch's own
    per-trial outcomes already hold them, so nothing is re-run — and
    the parent re-raises after landing them.  Cells that cannot batch
    (``UnbatchableError``) run serially instead.  Genuine defects raise.

    ``meta`` describes how the unit actually executed: ``kind`` as
    dispatched, ``fallback`` when a batch degraded to serial trials, and
    ``phases`` — this unit's telemetry delta (a
    :meth:`~repro.telemetry.phases.PhaseStats.since` snapshot), so the
    parent of a worker *process* can fold hot-path phase timings back
    into its own collector.  ``None`` when telemetry is off.
    """
    from ..core.exceptions import NotStabilized, UnbatchableError

    kind, payload, campaign_seed, campaign = args
    stats = telemetry.collector()
    mark = stats.mark() if stats is not None else None
    fallback = False
    try:
        if kind != "batch":
            records, error = [execute_trial(payload, campaign_seed, campaign)], None
        else:
            try:
                records, error = _batch_records(payload, campaign_seed, campaign)
            except UnbatchableError:
                fallback = True
                records, error = _serial_records(payload, campaign_seed, campaign)
    except NotStabilized as exc:
        # Single-trial budget exhaustion: nothing landed, but the parent
        # still owns the raise (so it can emit the failure event first).
        records, error = [], exc
    meta = {
        "kind": kind,
        "fallback": fallback,
        "keys": _unit_keys(kind, payload),
        "phases": stats.since(mark) if stats is not None else None,
    }
    return records, error, meta


def default_chunksize(total: int, workers: int) -> int:
    """Chunk so each worker sees ~4 batches: big enough to amortize IPC,
    small enough to keep the tail balanced when trial costs vary."""
    return max(1, total // (workers * 4) or 1)


def _unit_keys(kind: str, item: Any) -> list[str]:
    """Canonical trial keys an execution unit is responsible for."""
    if kind == "batch":
        return [spec.key() for spec in item]
    return [item.key()]


# ----------------------------------------------------------------------
# Supervised execution (FailurePolicy)
# ----------------------------------------------------------------------
@dataclass
class _WorkItem:
    """One schedulable unit in the supervised executor's queue."""

    kind: str                     # "batch" | "single"
    payload: Any                  # tuple[TrialSpec] | TrialSpec
    tier: str                     # "batch" | "single" | "dict"
    retries: int = 0
    not_before: float = 0.0

    @property
    def keys(self) -> list[str]:
        return _unit_keys(self.kind, self.payload)


def _supervised_worker(conn, args) -> None:
    """Child side of the supervised executor: run one unit, send result.

    Never raises into the sweep: a genuine defect (poison trial) is
    reported over the pipe as an ``error`` failure so the parent can
    retry/degrade/quarantine it.  The chaos hook fires *before* any
    trial executes (see :mod:`repro.engine.chaos`), so a tripped worker
    cannot have landed partial results.
    """
    kind, payload, campaign_seed, campaign = args
    keys = _unit_keys(kind, payload)
    from . import chaos

    chaos.trip(keys)
    try:
        from ..core.exceptions import NotStabilized

        records, error, meta = _worker(args)
        info = None
        if error is not None:
            reason = "budget" if isinstance(error, NotStabilized) else "error"
            info = {"reason": reason, "message": str(error)}
        conn.send((records, info, meta))
    except BaseException as exc:
        conn.send((
            [],
            {"reason": "error", "message": f"{type(exc).__name__}: {exc}"},
            {"kind": kind, "fallback": False, "keys": keys, "phases": None},
        ))
    finally:
        conn.close()


def _dict_fallback(spec: TrialSpec) -> TrialSpec:
    """The same trial pinned to the dict reference engine.

    ``backend`` is an execution option: excluded from the trial key, so
    the degraded record is byte-identical to what the kernel tier would
    have produced.  The decoded measurement tier rides along implicitly
    (the dict engine never fuses).
    """
    params = tuple(
        (k, v) for k, v in spec.params if k != "backend"
    ) + (("backend", "dict"),)
    return replace(spec, params=params)


def _is_dict_tier(spec: TrialSpec) -> bool:
    return dict(spec.params).get("backend") == "dict"


def _run_supervised(
    units: Sequence[tuple[str, Any]],
    campaign_seed: int,
    campaign: str,
    *,
    workers: int,
    policy: FailurePolicy,
    land_records: Callable[[list[dict], dict], None],
    quarantine: Callable[[str, str, int, str], None],
    landed: Callable[[str], bool],
    absorb: Callable[[dict], None],
) -> None:
    """Drive all units to completion under a :class:`FailurePolicy`.

    One OS process per in-flight unit (at most ``max(1, workers)``),
    each with its own result pipe — a worker killed mid-write can
    corrupt only its own channel, never a shared queue.  The parent is
    the only writer of the store, exactly as on the pool path.
    """
    ctx = multiprocessing.get_context()
    capacity = max(1, workers)
    pending: list[_WorkItem] = [
        _WorkItem(
            kind,
            payload,
            tier=(
                "batch" if kind == "batch"
                else "dict" if _is_dict_tier(payload)
                else "single"
            ),
        )
        for kind, payload in units
    ]
    live: list[dict] = []

    def unlanded(item: _WorkItem) -> list[str]:
        return [key for key in item.keys if not landed(key)]

    def fail(item: _WorkItem, reason: str, message: str) -> None:
        now = time.monotonic()
        if item.retries < policy.max_retries:
            item.retries += 1
            item.not_before = now + policy.backoff * (2 ** (item.retries - 1))
            pending.append(item)
            return
        if policy.degrade and item.kind == "batch":
            # One rung down: the cell's replicates as single trials.
            pending.extend(
                _WorkItem("single", spec, tier="single")
                for spec in item.payload
                if not landed(spec.key())
            )
            return
        if policy.degrade and item.tier == "single":
            pending.append(
                _WorkItem("single", _dict_fallback(item.payload), tier="dict")
            )
            return
        for key in unlanded(item):
            quarantine(key, reason, item.retries, message)

    def launch(item: _WorkItem) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        args = (item.kind, item.payload, campaign_seed, campaign)
        proc = ctx.Process(
            target=_supervised_worker, args=(child_conn, args), daemon=True
        )
        proc.start()
        child_conn.close()
        deadline = None
        if policy.trial_timeout is not None:
            deadline = time.monotonic() + policy.trial_timeout * len(item.keys)
        live.append(
            {"proc": proc, "conn": parent_conn, "item": item, "deadline": deadline}
        )

    def finish(entry: dict) -> None:
        live.remove(entry)
        entry["conn"].close()
        entry["proc"].join()

    while pending or live:
        now = time.monotonic()
        while len(live) < capacity:
            idx = next(
                (i for i, it in enumerate(pending) if it.not_before <= now),
                None,
            )
            if idx is None:
                break
            launch(pending.pop(idx))

        progressed = False
        for entry in list(live):
            proc, conn, item = entry["proc"], entry["conn"], entry["item"]
            if conn.poll(0):
                try:
                    records, info, meta = conn.recv()
                except EOFError:
                    finish(entry)
                    fail(item, "crash",
                         f"worker died (exit {proc.exitcode}) before reporting")
                    progressed = True
                    continue
                finish(entry)
                absorb(meta.get("phases"))
                land_records(records, meta)
                if info is not None:
                    if info["reason"] == "budget":
                        # Deterministic: a seeded trial cannot stabilize
                        # on retry.  Siblings already landed above.
                        for key in unlanded(item):
                            quarantine(key, "budget", item.retries,
                                       info["message"])
                    else:
                        fail(item, info["reason"], info["message"])
                progressed = True
            elif not proc.is_alive():
                finish(entry)
                fail(item, "crash", f"worker died (exit {proc.exitcode})")
                progressed = True
            elif entry["deadline"] is not None and now > entry["deadline"]:
                proc.kill()
                finish(entry)
                fail(item, "timeout",
                     f"unit exceeded its deadline "
                     f"({policy.trial_timeout:g}s per trial)")
                progressed = True

        if not progressed:
            time.sleep(0.02)


def run_specs(
    specs: Sequence[TrialSpec] | Iterable[TrialSpec],
    campaign_seed: int,
    *,
    campaign: str = "",
    workers: int = 0,
    chunksize: int | None = None,
    progress: ProgressFn | None = None,
    store: ResultStore | None = None,
    batch: bool = True,
    events=None,
    heartbeat_every: float = HEARTBEAT_EVERY,
    policy: FailurePolicy | None = None,
    failures: list | None = None,
) -> list[dict]:
    """Execute all ``specs``; return their records in spec order.

    Replicates sharing a grid cell run as one vectorized batch unless
    ``batch=False`` (records are identical either way).  ``workers <= 1``
    runs serially in-process; ``workers >= 2`` fans out to that many OS
    processes (capped by the number of batches and single trials), one
    batch or single trial per work item.  Completed
    records are appended to ``store`` (if given) as they arrive, so an
    interrupted run keeps everything that finished —
    :func:`repro.engine.resume.run_campaign` picks up the rest.

    Landing is idempotent per trial key: a record whose key already
    landed is dropped (no duplicate store append, no extra ``progress``
    call), so ``progress`` fires exactly once per trial whatever the
    batch shapes or arrival order.

    ``events`` (an :class:`repro.telemetry.events.EventSink`, optional)
    receives the campaign lifecycle: ``cell_composed`` when units are
    dispatched, ``trial_finished`` per landed record, ``trial_failed``
    for a unit's unlanded trials before the failure re-raises, and a
    throttled ``heartbeat`` (every ``heartbeat_every`` seconds) with
    utilization and throughput.  On the multiprocessing path each
    worker's hot-path phase timings are folded back into the parent's
    telemetry collector, so a sweep's phase breakdown covers the
    children's work too.

    ``policy`` (a :class:`FailurePolicy`) switches to the *supervised*
    executor: per-trial deadlines, bounded retries with backoff for
    crashed workers, a batch → serial → dict degradation ladder, and
    poison-trial quarantine.  With a policy, a failing trial no longer
    aborts the sweep: the rest of the grid completes, quarantined
    trials are appended to ``failures`` (a caller-supplied list of
    ``{key, reason, retries, error}`` dicts) and the returned list
    covers only the trials that landed.
    """
    specs = list(specs)
    total = len(specs)
    records_by_key: dict[str, dict] = {}
    started = time.monotonic()
    last_beat = started
    stats = telemetry.collector()

    def heartbeat() -> None:
        nonlocal last_beat
        if events is None:
            return
        now = time.monotonic()
        if now - last_beat < heartbeat_every:
            return
        last_beat = now
        done = len(records_by_key)
        elapsed = now - started
        rate = done / elapsed if elapsed > 0 else 0.0
        events.emit(
            "heartbeat",
            done=done,
            total=total,
            elapsed_s=round(elapsed, 3),
            trials_per_s=round(rate, 3),
            eta_s=round((total - done) / rate, 1) if rate > 0 else None,
        )

    def land(record: dict, meta: dict) -> None:
        if record["key"] in records_by_key:
            return  # already landed (e.g. duplicate across units): once only
        records_by_key[record["key"]] = record
        if store is not None:
            store.append(record)
        if events is not None:
            events.emit(
                "trial_finished",
                key=record["key"],
                status="ok",
                steps=record.get("result", {}).get("steps"),
                unit=meta.get("kind"),
                fallback=meta.get("fallback", False),
            )
        if progress is not None:
            progress(len(records_by_key), total, record)
        heartbeat()

    units = _execution_units(specs, batch)
    payload = [(kind, item, campaign_seed, campaign) for kind, item in units]
    if events is not None:
        for kind, item in units:
            cell = item[0].cell_key() if kind == "batch" else item.cell_key()
            events.emit(
                "cell_composed",
                cell=cell,
                trials=len(item) if kind == "batch" else 1,
                kind=kind,
            )

    def land_unit(
        result: tuple[list[dict], Exception | None, dict],
        absorb_phases: bool,
    ) -> None:
        records, error, meta = result
        # Worker *processes* timed their hot paths into their own
        # collectors; fold the delta into ours.  In-process units already
        # accumulated here — absorbing again would double count.
        if absorb_phases and stats is not None:
            stats.absorb(meta.get("phases"))
        for record in records:
            land(record, meta)
        if error is not None:
            if events is not None:
                from ..core.exceptions import NotStabilized

                reason = "budget" if isinstance(error, NotStabilized) else "error"
                for key in meta.get("keys", ()):
                    if key not in records_by_key:
                        events.emit(
                            "trial_failed", key=key, error=str(error),
                            reason=reason, retries=0,
                        )
            raise error

    if policy is not None:
        def quarantine(key: str, reason: str, retries: int, message: str) -> None:
            if failures is not None:
                failures.append(
                    {"key": key, "reason": reason, "retries": retries,
                     "error": message}
                )
            if events is not None:
                events.emit(
                    "trial_failed", key=key, error=message,
                    reason=reason, retries=retries,
                )

        def land_records(records: list[dict], meta: dict) -> None:
            for record in records:
                land(record, meta)

        _run_supervised(
            units, campaign_seed, campaign,
            workers=workers, policy=policy,
            land_records=land_records,
            quarantine=quarantine,
            landed=lambda key: key in records_by_key,
            absorb=(stats.absorb if stats is not None else lambda delta: None),
        )
        return [
            records_by_key[spec.key()]
            for spec in specs
            if spec.key() in records_by_key
        ]

    if workers <= 1 or total <= 1:
        for args in payload:
            land_unit(_worker(args), absorb_phases=False)
    else:
        workers = min(workers, len(units))
        chunk = (
            chunksize
            if chunksize is not None
            else default_chunksize(len(units), workers)
        )
        with multiprocessing.Pool(workers) as pool:
            for result in pool.imap_unordered(_worker, payload, chunksize=chunk):
                land_unit(result, absorb_phases=True)

    return [records_by_key[spec.key()] for spec in specs]
