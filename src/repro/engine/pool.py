"""Trial executor: multiprocessing fan-out with an in-process fallback.

``run_specs`` drives a list of :class:`~repro.engine.campaign.TrialSpec`
descriptors to completion.  With ``workers >= 2`` the trials fan out to a
``multiprocessing.Pool`` via ``imap_unordered`` (chunked to amortize IPC);
with ``workers <= 1`` they run in-process, which keeps debugging, coverage,
and tracing trivial.  Either way results stream back to the parent, which
is the *only* writer of the result store — workers compute, the parent
persists, so no file locking is needed.

Because every trial's seed derives from its descriptor (not from execution
order), both paths produce identical records.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Iterable, Sequence

from .campaign import TrialSpec
from .seeds import derive_seed
from .store import SCHEMA_VERSION, ResultStore, trial_to_dict

__all__ = ["execute_trial", "run_specs", "default_chunksize"]

#: ``progress(done, total, record)`` — invoked in the parent after each
#: trial lands (and after each skipped/streamed record on resume paths).
ProgressFn = Callable[[int, int, dict], None]


def execute_trial(spec: TrialSpec, campaign_seed: int, campaign: str = "") -> dict:
    """Run one trial and return its store record.

    Safe to call in any process: the seed comes from the descriptor hash,
    and the record contains nothing execution-dependent (no timestamps,
    pids, or hostnames), so parallel and serial runs are byte-identical.
    """
    # Imported lazily — the harness experiments import the engine, so a
    # module-level import here would be circular.
    from ..harness.runner import run_trial

    seed = derive_seed(campaign_seed, spec.key())
    trial = run_trial(spec, seed=seed)
    return {
        "schema": SCHEMA_VERSION,
        "campaign": campaign,
        "campaign_seed": campaign_seed,
        "key": spec.key(),
        "seed": seed,
        "spec": spec.to_dict(),
        "result": trial_to_dict(trial),
    }


def _worker(args: tuple[TrialSpec, int, str]) -> dict:
    return execute_trial(*args)


def default_chunksize(total: int, workers: int) -> int:
    """Chunk so each worker sees ~4 batches: big enough to amortize IPC,
    small enough to keep the tail balanced when trial costs vary."""
    return max(1, total // (workers * 4) or 1)


def run_specs(
    specs: Sequence[TrialSpec] | Iterable[TrialSpec],
    campaign_seed: int,
    *,
    campaign: str = "",
    workers: int = 0,
    chunksize: int | None = None,
    progress: ProgressFn | None = None,
    store: ResultStore | None = None,
) -> list[dict]:
    """Execute all ``specs``; return their records in spec order.

    ``workers <= 1`` runs serially in-process; ``workers >= 2`` fans out to
    that many OS processes.  Completed records are appended to ``store``
    (if given) as they arrive, so an interrupted run keeps everything that
    finished — :func:`repro.engine.resume.run_campaign` picks up the rest.
    """
    specs = list(specs)
    total = len(specs)
    records_by_key: dict[str, dict] = {}

    def land(record: dict) -> None:
        records_by_key[record["key"]] = record
        if store is not None:
            store.append(record)
        if progress is not None:
            progress(len(records_by_key), total, record)

    if workers <= 1 or total <= 1:
        for spec in specs:
            land(execute_trial(spec, campaign_seed, campaign))
    else:
        workers = min(workers, total)
        payload = [(spec, campaign_seed, campaign) for spec in specs]
        chunk = chunksize if chunksize is not None else default_chunksize(total, workers)
        with multiprocessing.Pool(workers) as pool:
            for record in pool.imap_unordered(_worker, payload, chunksize=chunk):
                land(record)

    return [records_by_key[spec.key()] for spec in specs]
