"""Campaign-level orchestration: diff the grid against the store, run the rest.

``run_campaign`` is the engine's front door.  It expands the campaign
grid, subtracts the trials whose records are already in the store (matched
by canonical key *and* campaign seed, so stores can be shared between
campaigns without cross-talk), executes only what is missing, and returns
the full grid's records in deterministic grid order.  A campaign killed at
trial 900/1000 therefore costs 100 trials to finish, not 1000.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .campaign import Campaign, TrialSpec
from .pool import FailurePolicy, ProgressFn, run_specs
from .store import ResultStore

__all__ = ["CampaignOutcome", "completed_records", "missing_specs", "run_campaign"]


@dataclass
class CampaignOutcome:
    """What a (possibly resumed) campaign run produced.

    ``records`` always covers the *whole* grid, in grid order — stored
    records for skipped trials, fresh records for executed ones.  Under a
    :class:`~repro.engine.pool.FailurePolicy`, quarantined trials are
    listed in ``failures`` (``{key, reason, retries, error}`` dicts) and
    omitted from ``records``; without a policy ``failures`` is empty.
    """

    campaign: Campaign
    records: list[dict] = field(default_factory=list)
    ran: int = 0
    skipped: int = 0
    failures: list[dict] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)


def completed_records(campaign: Campaign, store: ResultStore) -> dict[str, dict]:
    """Stored records belonging to this campaign, keyed by trial key.

    A record counts only if its ``campaign_seed`` matches: the same grid
    under a different master seed is a different experiment, and its
    results must not satisfy this one's resume check.
    """
    done: dict[str, dict] = {}
    if not store.exists():
        return done
    wanted = campaign.keys()
    for record in store.iter_records():
        key = record.get("key")
        if key in wanted and record.get("campaign_seed") == campaign.seed:
            done[key] = record
    return done


def missing_specs(campaign: Campaign, store: ResultStore) -> list[TrialSpec]:
    """The grid minus what the store already holds (in grid order)."""
    done = completed_records(campaign, store)
    return [spec for spec in campaign.iter_specs() if spec.key() not in done]


def run_campaign(
    campaign: Campaign,
    *,
    store: ResultStore | None = None,
    workers: int = 0,
    resume: bool = False,
    chunksize: int | None = None,
    progress: ProgressFn | None = None,
    batch: bool = True,
    events=None,
    policy: FailurePolicy | None = None,
) -> CampaignOutcome:
    """Execute a campaign, optionally resuming from a partial store.

    Without ``resume`` every trial runs (and is appended to ``store`` if
    one is given).  With ``resume`` the store is diffed first and only the
    missing trials execute; already-stored records are returned as-is.
    ``batch`` lets whole grid cells run as single vectorized multi-trial
    simulations (default; records are identical either way).

    ``events`` (an :class:`repro.telemetry.events.EventSink`, optional)
    receives ``campaign_started`` before any trial runs, the per-trial
    lifecycle from :func:`repro.engine.pool.run_specs`, and
    ``campaign_finished`` on success — the finish event carries the
    process's telemetry phase breakdown when phase tracing is enabled.
    A crashed run leaves the log without a finish event, which is how
    the ``status`` reader distinguishes running/crashed from done.

    ``policy`` (a :class:`~repro.engine.pool.FailurePolicy`) switches
    execution to the supervised, crash-tolerant path: a failing trial is
    retried, degraded down the batch → serial → dict ladder, and finally
    quarantined into ``outcome.failures`` instead of aborting the sweep
    — the rest of the grid always completes, and the returned records
    cover every trial that landed.
    """
    import time

    from ..telemetry import phases as telemetry

    specs = campaign.specs()
    existing: dict[str, dict] = {}
    if resume and store is not None:
        existing = completed_records(campaign, store)

    todo = [spec for spec in specs if spec.key() not in existing]
    if events is not None:
        events.emit(
            "campaign_started",
            total=campaign.size,
            pending=len(todo),
            workers=workers,
            batch=batch,
            store=str(store.path) if store is not None else None,
        )
    started = time.monotonic()
    failures: list[dict] = []
    fresh = run_specs(
        todo,
        campaign.seed,
        campaign=campaign.name,
        workers=workers,
        chunksize=chunksize,
        progress=progress,
        store=store,
        batch=batch,
        events=events,
        policy=policy,
        failures=failures,
    )
    if events is not None:
        elapsed = time.monotonic() - started
        events.emit(
            "campaign_finished",
            done=len(fresh),
            total=campaign.size,
            elapsed_s=round(elapsed, 3),
            trials_per_s=round(len(fresh) / elapsed, 3) if elapsed > 0 else 0.0,
            phase_stats=telemetry.snapshot(),
        )
    by_key = dict(existing)
    by_key.update((record["key"], record) for record in fresh)
    return CampaignOutcome(
        campaign=campaign,
        records=[by_key[s.key()] for s in specs if s.key() in by_key],
        ran=len(todo),
        skipped=len(specs) - len(todo),
        failures=failures,
    )
