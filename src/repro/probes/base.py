"""The capability-tiered observation protocol.

Every measurement in this repository — stabilization times, closure
assertions, accounting snapshots, trace samples — is an *observation*
of an execution.  The legacy observer contract (a callable invoked with
``(simulator, record)`` after every step) forces the simulator to build
a decoded :class:`~repro.core.trace.StepRecord` per step, which kicks
execution off the fused kernel loop: the experiments that matter most
ran orders of magnitude slower than the engine allows, purely to be
measured.

:class:`Probe` replaces that contract with two declared capability
tiers:

* the **decode tier** — ``on_start(sim)`` / ``on_step(sim, record)``,
  exactly the legacy contract.  Every probe supports it; it is the
  fallback whenever the execution itself cannot fuse (dict backend,
  unvectorizable daemon, tracing, paranoid mode).
* the **vector tier** — ``on_columns(view)`` over a
  :class:`~repro.probes.view.ColumnView`, invoked *inline* by the fused
  drivers (:meth:`repro.core.kernel.engine.KernelRuntime.run` and the
  batched :func:`repro.core.kernel.batch.run_batch`) with no per-step
  decode.  A probe advertises this tier by returning ``False`` from
  :meth:`Probe.wants_decode`; :attr:`Simulator.fusion_available` stays
  true when *every* attached probe does, so measurement never costs the
  fused loop.

Both tiers must report identical measurements for identical executions
(the probe-equivalence property suite asserts byte-equality); a probe
that cannot guarantee that must stay on the decode tier.

Stopping is part of the protocol: after each step (on either tier) the
driver asks :meth:`Probe.done`; any probe answering ``True`` ends the
run with ``stop_reason="probe"``.  This is how ``stop_when`` predicates
and stabilization detection express themselves without a per-step
Python closure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from .view import ColumnView

if TYPE_CHECKING:  # import cycle: the simulator imports this package
    from ..core.simulator import Simulator
    from ..core.trace import StepRecord

__all__ = ["Probe", "LegacyObserverProbe", "as_probe"]


class Probe:
    """Base class of the two-tier observation protocol.

    Subclasses override the decode hooks (always) and, when they can
    observe columns directly, the vector hooks plus ``wants_decode``.
    The default implementation is a no-op decode-tier probe.
    """

    #: Human-readable label (diagnostics, CLI listings).
    name = "probe"

    # ------------------------------------------------------------------
    # Capability declaration
    # ------------------------------------------------------------------
    def wants_decode(self) -> bool:
        """Whether this probe needs per-step decoded records.

        ``True`` (the default) keeps the execution on the step-by-step
        loop.  Probes returning ``False`` MUST implement
        :meth:`on_columns` and are then served inline by the fused
        drivers.  Consulted after :meth:`on_start` ran, so probes may
        resolve their capability against the simulator they are
        attached to (e.g. whether its kernel program provides the mask
        they need).
        """
        return True

    def mask_fn(self, program) -> Callable[[Any], Any] | None:
        """Optional per-process boolean mask over ``program``'s columns.

        Batched execution uses this to freeze a trial the first time
        the mask holds on its whole block (the vectorized counterpart
        of a ``stop_when`` predicate); ``None`` means the probe has no
        mask to offer.
        """
        return None

    # ------------------------------------------------------------------
    # Decode tier (the legacy observer contract)
    # ------------------------------------------------------------------
    def on_start(self, sim: "Simulator") -> None:
        """Observe the initial configuration, before any step."""

    def on_step(self, sim: "Simulator", record: "StepRecord") -> None:
        """Observe one decoded step (invoked after accounting updated)."""

    # ------------------------------------------------------------------
    # Vector tier
    # ------------------------------------------------------------------
    def on_columns(self, view: ColumnView) -> None:
        """Observe one step (or the start) in array form.

        Only invoked on probes whose :meth:`wants_decode` returned
        ``False``; ``view.phase`` distinguishes the initial
        configuration from per-step calls.
        """

    # ------------------------------------------------------------------
    # Fault notifications (tier-agnostic)
    # ------------------------------------------------------------------
    def on_fault(self, info) -> None:
        """Observe one mid-run fault injection (a ``FaultInfo``).

        Invoked by every driver — dict, kernel, fused, batched —
        immediately after a :class:`~repro.faults.schedule.FaultSchedule`
        occurrence corrupts the configuration, on both capability tiers.
        Injection adds no steps/moves/rounds; ``info`` carries the totals
        at the corrupted configuration plus the victims and variables
        hit.  Default: no-op.
        """

    def on_churn(self, info) -> None:
        """Observe one mid-run topology mutation (a ``ChurnInfo``).

        Invoked by every driver immediately after a
        :class:`~repro.faults.churn.ChurnSchedule` occurrence mutates
        the network — links dropped/added, processes crashed/rejoined —
        on both capability tiers.  Like fault injection, a mutation adds
        no steps/moves/rounds; ``info`` carries the totals at the
        mutated configuration plus the applied delta and the live
        subgraph's component count.  Default: no-op.
        """

    def on_finish(self, sim: "Simulator") -> None:
        """Observe the final configuration once, after the driving loop.

        Invoked exactly once per :meth:`Simulator.run` return, on the
        decode tier, after any fused execution has merged its accounting
        and synchronized churn topology back into the simulator.  Lets a
        probe settle state the per-step hooks could not see — e.g. a
        churn occurrence whose delta leaves the system immediately
        terminal *and* legitimate produces no further step to observe,
        so a recovery stopwatch closes here with zero cost.  Default:
        no-op.
        """

    # ------------------------------------------------------------------
    # Stop requests
    # ------------------------------------------------------------------
    def done(self) -> bool:
        """Whether this probe requests no further execution.

        Checked by every driver after each observation (and once on the
        initial configuration); any attached probe answering ``True``
        stops the run with ``stop_reason="probe"``.
        """
        return False

    # ------------------------------------------------------------------
    # Legacy interoperability: a probe can be handed to code that still
    # calls observers as plain ``observer(sim, record)`` callables.
    # ------------------------------------------------------------------
    def __call__(self, sim: "Simulator", record: "StepRecord") -> None:
        self.on_step(sim, record)


class LegacyObserverProbe(Probe):
    """Deprecation shim: a legacy observer callable as a decode-tier probe.

    Wraps today's observer contract — ``observer(simulator, record)``
    per step, optional ``on_start(simulator)`` attribute — unchanged.
    Wrapped observers never fuse (the callable's needs are unknowable),
    which is exactly the legacy behavior; port the observer to a
    :class:`Probe` subclass with a vector tier to get the fused loop
    back.
    """

    __slots__ = ("observer",)
    name = "legacy-observer"

    def __init__(self, observer: Callable[["Simulator", "StepRecord"], Any]):
        if not callable(observer):
            raise TypeError(f"observer {observer!r} is not callable")
        self.observer = observer

    def on_start(self, sim: "Simulator") -> None:
        on_start = getattr(self.observer, "on_start", None)
        if on_start is not None:
            on_start(sim)

    def on_step(self, sim: "Simulator", record: "StepRecord") -> None:
        self.observer(sim, record)

    def __repr__(self) -> str:
        return f"LegacyObserverProbe({self.observer!r})"


def as_probe(observer: Any) -> Probe:
    """Coerce a legacy observer callable (or a probe) into a probe."""
    if isinstance(observer, Probe):
        return observer
    return LegacyObserverProbe(observer)
