"""repro.probes — capability-tiered observation of executions.

The paper's claims are *measurements* — stabilization times in rounds
and moves under the neutralization-faithful accounting of Section 2.4 —
yet the legacy observer API made any measurement disable the fused
kernel loop.  This subsystem makes observation a first-class, declared
capability of the model interface instead of an opaque callback bolted
onto the run loop (the DEVS tradition of structuring what a simulator
exposes to instrumentation):

* :class:`Probe` — the protocol: a decoded per-step hook (today's
  observer contract) plus an optional vectorized hook served inline by
  the fused drivers.  ``Simulator.run`` stays fused whenever every
  attached probe advertises the array-native path.
* :class:`StabilizationProbe` / :class:`StopProbe` — stabilization
  measurement, closure (``run_past``) monitoring, and stop predicates
  over vectorized legitimacy masks.
* :class:`AccountingProbe` / :class:`TraceProbe` — periodic accounting
  snapshots and every-k-steps configuration sampling.
* :class:`RecoveryProbe` / :class:`SdrWaveProbe` — per-fault-burst
  recovery stopwatches and SDR reset-wave counters, armed by the
  drivers' ``on_fault`` notification (see :mod:`repro.faults.schedule`).
* :class:`LegacyObserverProbe` / :func:`as_probe` — the deprecation
  shim wrapping legacy observer callables.

Migration from the legacy API::

    # before: observer path, fused loop disabled
    det, _ = measure_stabilization(sim, sdr.is_normal)

    # after: fused end-to-end when the program provides the mask
    probe = StabilizationProbe(sdr.is_normal, mask="normal_mask")
    sim.add_probe(probe)
    sim.run(max_steps=...)
    probe.require_hit()
"""

from .base import LegacyObserverProbe, Probe, as_probe
from .recovery import RecoveryProbe, SdrWaveProbe
from .registry import PROBE_NAMES, is_named_probe, make_probe
from .sampling import AccountingProbe, TraceProbe
from .stabilization import StabilizationProbe, StopProbe
from .view import ColumnView

__all__ = [
    "Probe",
    "ColumnView",
    "LegacyObserverProbe",
    "as_probe",
    "StabilizationProbe",
    "StopProbe",
    "AccountingProbe",
    "TraceProbe",
    "RecoveryProbe",
    "SdrWaveProbe",
    "PROBE_NAMES",
    "is_named_probe",
    "make_probe",
]
