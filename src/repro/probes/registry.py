"""Named probe selections: ``"accounting:100"`` → a probe instance.

The trial runners take a ``probe`` execution option.  Besides the two
measurement-tier modes (``"auto"``/``"decode"``), it now accepts a
*named selection* — ``name`` or ``name:arg`` — constructing an auxiliary
probe that rides the trial for observation only: its samples feed
telemetry and ad-hoc analysis, never the result record, so records stay
byte-identical whatever probe was attached (the ``probe`` param is an
:data:`repro.engine.campaign.EXECUTION_OPTIONS` member for exactly that
reason).

Every registered probe is vector-capable (``wants_decode() → False``),
so named selections keep the fused loop *and* batch: the executor
instantiates one probe per replicate and each observes its own block of
the tiled buffers.

Registered names:

``accounting[:every]``
    :class:`~repro.probes.sampling.AccountingProbe` — periodic
    ``(steps, moves, rounds)`` snapshots, default ``every=1``.
``trace[:every]``
    :class:`~repro.probes.sampling.TraceProbe` — every-``k``-steps
    configuration snapshots, default ``every=1``.
``sdr-moves``
    :class:`~repro.harness.experiments.SdrMoveCounter` — per-process
    SDR-rule move tally (no argument).
"""

from __future__ import annotations

from .base import Probe
from .sampling import AccountingProbe, TraceProbe

__all__ = ["PROBE_NAMES", "is_named_probe", "make_probe"]


def _make_accounting(arg: str | None, n: int) -> Probe:
    return AccountingProbe(every=int(arg) if arg else 1)


def _make_trace(arg: str | None, n: int) -> Probe:
    return TraceProbe(every=int(arg) if arg else 1)


def _make_sdr_moves(arg: str | None, n: int) -> Probe:
    if arg is not None:
        raise ValueError("probe 'sdr-moves' takes no argument")
    # Imported lazily: the harness imports this package at module scope.
    from ..harness.experiments import SdrMoveCounter

    return SdrMoveCounter(n)


_FACTORIES = {
    "accounting": _make_accounting,
    "trace": _make_trace,
    "sdr-moves": _make_sdr_moves,
}

#: Names accepted by :func:`make_probe` (each optionally ``name:arg``).
PROBE_NAMES = tuple(sorted(_FACTORIES))


def is_named_probe(selection: str) -> bool:
    """Whether ``selection`` names a registered probe (arg not checked)."""
    name = selection.split(":", 1)[0]
    return name in _FACTORIES


def make_probe(selection: str, n: int) -> Probe:
    """Instantiate the probe a ``name[:arg]`` selection describes.

    ``n`` is the network size (some probes are per-process).  Raises
    :class:`ValueError` on an unknown name or a malformed argument.
    """
    name, _, arg = selection.partition(":")
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown probe {name!r}; choose from {PROBE_NAMES} "
            "(or the measurement modes 'auto'/'decode')"
        )
    try:
        return factory(arg or None, n)
    except ValueError as exc:
        raise ValueError(f"bad probe selection {selection!r}: {exc}") from exc
