"""The column view the fused drivers expose to vectorized probes.

A :class:`ColumnView` is the window a probe's ``on_columns`` hook sees:
the frozen read columns after one atomic step, the activated index
vector, the post-step enabled mask, and the execution's accounting
totals — everything the per-step decoded path would offer, but in array
form and without leaving the fused loop.  The driver owns one view per
execution (one per trial in batched runs) and mutates its fields in
place before each probe call; probes must treat every field as
read-only and must not retain references across steps (arrays are
reused buffers).
"""

from __future__ import annotations

__all__ = ["ColumnView"]


class ColumnView:
    """Per-step window into a fused execution.

    Attributes
    ----------
    program:
        The :class:`~repro.core.kernel.programs.KernelProgram` whose
        columns are being observed.  In batched runs this is the *base*
        (untiled) program: the view's columns are one trial's block, so
        base-program masks evaluate per trial exactly as in a single
        run.  ``opt_index`` columns are re-localized by the batch driver
        (the tiled layout's globalized indices have ``trial * n``
        subtracted), so pointer values compare directly against local
        process ids.
    trial:
        Trial index in a batched run, ``None`` in a single execution.
    phase:
        ``"start"`` — the initial configuration, before any step
        (``chosen`` is ``None``); ``"step"`` — after one atomic step.
    cols:
        The current read columns (mapping variable name → ndarray; block
        views in batched runs).
    chosen:
        Activated process indices of this step (ascending, trial-local),
        or ``None`` at phase ``"start"``.
    enabled_mask:
        Per-process boolean enabled mask of the *current* configuration.
    chosen_rules:
        Rule-index vector aligned with ``chosen``: ``chosen_rules[i]`` is
        the index (into ``program.rules``) of the rule process
        ``chosen[i]`` executed this step.  ``None`` at phase ``"start"``.
        This is the executed dispatch — captured before the post-step
        guard recomputation — so probes counting per-rule moves can
        vectorize (``np.isin(view.chosen_rules, ...)``) instead of
        decoding per step.
    rule_idx:
        Per-process dispatch vector of the *current* (post-step) enabled
        set: ``rule_idx[u]`` is the index of the lowest-indexed rule
        enabled at ``u``, ``-1`` where disabled.  Only populated when
        several rules are simultaneously active (the drivers' single-rule
        fast path never materializes it) — ``None`` otherwise, so probes
        must fall back to ``enabled_mask`` + ``program`` guard knowledge
        when it is absent.  A reused buffer like every other array here.
    live:
        Per-process liveness column under topology churn: ``False``
        where a process has crashed and not rejoined.  ``None`` in the
        (overwhelmingly common) executions where no process has ever
        crashed — probes must treat ``None`` as everybody-live.
    steps / moves / rounds:
        Accounting totals at the current configuration (absolute, so a
        probe's measurements agree with ``sim.step_count`` etc. even
        when a run resumes mid-execution).
    """

    __slots__ = (
        "program", "trial", "phase", "cols", "chosen", "enabled_mask",
        "chosen_rules", "rule_idx", "live", "steps", "moves", "rounds",
    )

    def __init__(self, program, trial: int | None = None):
        self.program = program
        self.trial = trial
        self.phase = "start"
        self.cols = None
        self.chosen = None
        self.enabled_mask = None
        self.chosen_rules = None
        self.rule_idx = None
        self.live = None
        self.steps = 0
        self.moves = 0
        self.rounds = 0

    def __repr__(self) -> str:
        return (
            f"ColumnView(phase={self.phase!r}, trial={self.trial}, "
            f"steps={self.steps}, moves={self.moves}, rounds={self.rounds})"
        )
