"""Recovery measurement for mid-run fault injection.

:class:`RecoveryProbe` is the fault-workload counterpart of
:class:`~repro.probes.stabilization.StabilizationProbe`: instead of one
stopwatch from γ0 to the first legitimate configuration, it keeps one
stopwatch *per fault burst* — armed by the drivers' ``on_fault``
notification, stopped the next time the legitimacy notion holds — so a
storm of repeated corruptions yields a per-burst series of recovery
steps/rounds/moves.  Like every probe it is capability-tiered: with a
vectorized legitimacy mask it rides the fused loop (and batched cells);
with only a predicate it decodes per step.  Both tiers, and both
backends, report byte-identical burst series for identical executions.

:class:`SdrWaveProbe` adds the SDR-specific counters the paper's
cooperative-reset story is about: per burst, how many resets were
*initiated* (``rule_R`` moves), how much broadcast/feedback wave work ran
(``rule_RB``/``rule_RF``), how many distinct reset epochs the network
went through (transitions of "any process off status C"), and how many
initiators therefore *merged* into a shared wave instead of paying their
own.
"""

from __future__ import annotations

from typing import Any, Callable

from .base import Probe
from .stabilization import resolve_mask
from .view import ColumnView

__all__ = ["RecoveryProbe", "SdrWaveProbe"]

Predicate = Callable[[Any], bool]


class RecoveryProbe(Probe):
    """Per-burst recovery stopwatches over a legitimacy notion.

    Parameters
    ----------
    predicate:
        Decode-tier legitimacy test (``Configuration -> bool``).
    mask:
        Vector-tier legitimacy mask — a kernel-program attribute name
        (``"normal_mask"``) or a ``cols -> ndarray`` callable.
    terminal:
        For *silent* algorithms (``FGA ∘ SDR``): recovery means the
        configuration is terminal again — no process enabled.  Uses the
        drivers' own enabled bookkeeping on both tiers; ``predicate``
        and ``mask`` must be omitted.
    expected:
        Number of bursts the attached schedule will fire
        (``FaultSchedule.total_occurrences``); lets ``stop=True`` end
        the run once every expected burst has recovered.  ``None`` (for
        unbounded schedules) never stops the run on this probe's
        account.
    stop:
        Request a stop once ``expected`` bursts have all recovered.

    Each fired burst appends a record to :attr:`bursts`:
    ``injected_step``/``nominal_step``/``victims``/``variables`` from the
    injection, then — once the notion next holds — ``steps``/``rounds``/
    ``moves`` as recovery *deltas* from the injected configuration and
    ``recovered=True``.  Overlapping bursts (a new injection before the
    previous recovered) each keep their own stopwatch; one legitimate
    configuration closes all open ones.
    """

    name = "recovery"

    def __init__(
        self,
        predicate: Predicate | None = None,
        mask=None,
        name: str = "recovery",
        terminal: bool = False,
        expected: int | None = None,
        stop: bool = False,
    ):
        if terminal and (predicate is not None or mask is not None):
            raise ValueError("terminal recovery takes no predicate or mask")
        self.predicate = predicate
        self.mask = mask
        self.name = name
        self.terminal = terminal
        self.expected = expected
        self.stop = stop
        self.bursts: list[dict] = []
        self._open: list[int] = []
        self._mask_fn: Callable | None = mask if callable(mask) else None
        #: Crashed-and-not-rejoined process ids, learned from ``on_churn``
        #: notifications; legitimacy is judged on the live subsystem.
        self._dead: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def recovered_count(self) -> int:
        return len(self.bursts) - len(self._open)

    @property
    def all_recovered(self) -> bool:
        return not self._open and (
            self.expected is None or len(self.bursts) >= self.expected
        )

    def summary(self) -> dict:
        """JSON-safe recovery summary for trial records."""
        recovered = [b for b in self.bursts if b["recovered"]]
        out = {
            "bursts": len(self.bursts),
            "recovered": len(recovered),
            "records": [dict(b) for b in self.bursts],
        }
        for key in ("steps", "rounds", "moves"):
            series = [b[key] for b in recovered]
            out[f"worst_{key}"] = max(series) if series else None
            out[f"mean_{key}"] = (
                sum(series) / len(series) if series else None
            )
        return out

    # ------------------------------------------------------------------
    # Capability declaration
    # ------------------------------------------------------------------
    def wants_decode(self) -> bool:
        if self.terminal:
            return False
        return self._mask_fn is None

    def mask_fn(self, program) -> Callable | None:
        return resolve_mask(program, self.mask)

    # ------------------------------------------------------------------
    # Fault notifications (tier-agnostic)
    # ------------------------------------------------------------------
    def on_fault(self, info) -> None:
        self._open.append(len(self.bursts))
        self.bursts.append(
            {
                "burst": info.burst,
                "injected_step": info.step,
                "nominal_step": info.nominal_step,
                "victims": list(info.victims),
                "variables": list(info.variables),
                "at_moves": info.moves,
                "at_rounds": info.rounds,
                "steps": None,
                "rounds": None,
                "moves": None,
                "recovered": False,
            }
        )

    def on_churn(self, info) -> None:
        """Arm a recovery stopwatch for one topology-churn occurrence.

        Churn perturbs the system exactly as a fault burst does — the
        live subsystem must re-converge — so each occurrence gets the
        same per-burst stopwatch, with the applied delta recorded in
        place of corrupted variables.  The probe also tracks the dead
        set here: recovery under churn means the legitimacy notion
        holds on every *live* process.
        """
        if info.action == "crash":
            self._dead.update(info.victims)
        elif info.action == "join":
            self._dead.difference_update(info.victims)
        self._open.append(len(self.bursts))
        self.bursts.append(
            {
                "burst": info.burst,
                "action": info.action,
                "injected_step": info.step,
                "nominal_step": info.nominal_step,
                "victims": list(info.victims),
                "dropped": [list(e) for e in info.dropped],
                "added": [list(e) for e in info.added],
                "components": info.components,
                "live": info.live,
                "at_moves": info.moves,
                "at_rounds": info.rounds,
                "steps": None,
                "rounds": None,
                "moves": None,
                "recovered": False,
            }
        )

    # ------------------------------------------------------------------
    # Shared recording logic (identical on both tiers)
    # ------------------------------------------------------------------
    def _observe(self, holds: bool, steps: int, rounds: int, moves: int) -> None:
        if not holds or not self._open:
            return
        for i in self._open:
            burst = self.bursts[i]
            burst["steps"] = steps - burst["injected_step"]
            burst["rounds"] = rounds - burst["at_rounds"]
            burst["moves"] = moves - burst["at_moves"]
            burst["recovered"] = True
        self._open.clear()

    # ------------------------------------------------------------------
    # Decode tier
    # ------------------------------------------------------------------
    def _holds(self, sim) -> bool:
        if self.terminal:
            return sim.is_terminal()
        if self._mask_fn is not None and sim._kernel is not None:
            vals = self._mask_fn(sim._kernel.read)
            alive = sim._kernel.live
            if alive is not None:
                return bool(vals[alive].all())
            return bool(vals.all())
        if self.predicate is None:
            raise ValueError(
                f"recovery probe {self.name!r} has no decode-tier predicate "
                "and its mask did not resolve against this simulator's backend"
            )
        if self._dead:
            live = [u for u in range(sim.network.n) if u not in self._dead]
            return self.predicate(sim.cfg, live=live)
        return self.predicate(sim.cfg)

    def on_start(self, sim) -> None:
        if self._mask_fn is None and not self.terminal:
            self._mask_fn = resolve_mask(sim._program, self.mask)

    def on_step(self, sim, record) -> None:
        self._observe(
            self._holds(sim), sim.step_count, sim.rounds.completed, sim.move_count
        )

    def on_finish(self, sim) -> None:
        # A burst or churn occurrence that leaves the configuration
        # immediately terminal produces no further step on any tier;
        # if the final configuration is legitimate, the stopwatch
        # closes here with zero steps/rounds/moves.
        if not self._open:
            return
        if self._mask_fn is None and self.predicate is None and not self.terminal:
            return  # mask never resolved: nothing was observable all run
        self._observe(
            self._holds(sim), sim.step_count, sim.rounds.completed, sim.move_count
        )

    # ------------------------------------------------------------------
    # Vector tier
    # ------------------------------------------------------------------
    def on_columns(self, view: ColumnView) -> None:
        if self.terminal:
            if view.phase == "start":
                return
            self._observe(
                not bool(view.enabled_mask.any()),
                view.steps, view.rounds, view.moves,
            )
            return
        if self._mask_fn is None:
            self._mask_fn = resolve_mask(view.program, self.mask)
            if self._mask_fn is None:
                raise ValueError(
                    f"recovery probe {self.name!r}: mask {self.mask!r} did "
                    f"not resolve against {type(view.program).__name__}"
                )
        if view.phase == "start":
            return
        vals = self._mask_fn(view.cols)
        holds = (
            bool(vals[view.live].all()) if view.live is not None
            else bool(vals.all())
        )
        self._observe(holds, view.steps, view.rounds, view.moves)

    # ------------------------------------------------------------------
    def done(self) -> bool:
        return (
            self.stop
            and self.expected is not None
            and len(self.bursts) >= self.expected
            and not self._open
        )

    def __repr__(self) -> str:
        return (
            f"RecoveryProbe({self.name!r}, bursts={len(self.bursts)}, "
            f"recovered={self.recovered_count})"
        )


class SdrWaveProbe(Probe):
    """SDR reset-wave accounting per fault burst (and in total).

    Counts, per burst window (from one injection to the next):

    * ``initiators`` — ``rule_R`` executions (reset initiations);
    * ``rb`` / ``rf`` — broadcast / feedback wave moves;
    * ``epochs`` — distinct reset epochs: transitions of the network
      from "every status is C" to "some status off C";
    * ``merges`` — ``max(0, initiators - epochs)``: initiations that
      joined an already-running wave instead of starting their own (the
      cooperative multi-initiator behaviour of Section 3.3).

    Counts before the first injection accumulate in the ``"pre"``
    window (index ``-1`` in :attr:`windows` order).  Works on both
    tiers; the vector tier never leaves the fused loop (one boolean
    gather per step plus one column comparison).
    """

    name = "sdr-waves"

    def __init__(self):
        # Late import: keep repro.probes importable without the reset
        # package (and without numpy).
        from ..reset.sdr import C, SDR_RULES, ST

        self._st = ST
        self._clean_status = C
        self._rule_names = {"rule_R": "initiators", "rule_RB": "rb", "rule_RF": "rf"}
        self._sdr_rules = SDR_RULES
        self.windows: list[dict] = [self._window("pre")]
        self._dirty = False
        # Vector-tier lookups, resolved against the observed program once.
        self._rule_cols = None
        self._clean_code = None

    @staticmethod
    def _window(label) -> dict:
        return {"burst": label, "initiators": 0, "rb": 0, "rf": 0, "epochs": 0}

    # ------------------------------------------------------------------
    @property
    def current(self) -> dict:
        return self.windows[-1]

    def summary(self) -> dict:
        """JSON-safe per-burst wave summary for trial records."""
        windows = []
        for w in self.windows:
            w = dict(w)
            w["merges"] = max(0, w["initiators"] - w["epochs"])
            windows.append(w)
        return {
            "windows": windows,
            "initiators": sum(w["initiators"] for w in windows),
            "epochs": sum(w["epochs"] for w in windows),
            "merges": sum(w["merges"] for w in windows),
        }

    def wants_decode(self) -> bool:
        return False

    def on_fault(self, info) -> None:
        self.windows.append(self._window(info.burst))
        # The corrupted configuration may already sit mid-wave; epoch
        # transitions keep being detected from the observed state.

    def on_churn(self, info) -> None:
        # Topology churn opens a wave window too: the reset traffic it
        # provokes is attributed to the mutation, not the previous burst.
        self.windows.append(self._window(f"churn{info.burst}:{info.action}"))

    # ------------------------------------------------------------------
    # Decode tier
    # ------------------------------------------------------------------
    def on_start(self, sim) -> None:
        cfg = sim.cfg
        self._dirty = any(
            cfg[u][self._st] != self._clean_status
            for u in sim.network.processes()
        )

    def on_step(self, sim, record) -> None:
        window = self.current
        for rule in record.selection.values():
            key = self._rule_names.get(rule)
            if key is not None:
                window[key] += 1
        cfg = sim.cfg
        dirty = any(
            cfg[u][self._st] != self._clean_status
            for u in sim.network.processes()
        )
        if dirty and not self._dirty:
            window["epochs"] += 1
        self._dirty = dirty

    # ------------------------------------------------------------------
    # Vector tier
    # ------------------------------------------------------------------
    def on_columns(self, view: ColumnView) -> None:
        if self._rule_cols is None:
            rules = view.program.rules
            self._rule_cols = {
                k: self._rule_names[rule]
                for k, rule in enumerate(rules)
                if rule in self._rule_names
            }
            st_var = next(
                var for var in view.program.schema.vars if var.name == self._st
            )
            self._clean_code = st_var.encode_value(self._clean_status)
        st = view.cols[self._st]
        dirty = bool((st != self._clean_code).any())
        if view.phase == "start":
            self._dirty = dirty
            return
        window = self.current
        if view.chosen_rules is not None:
            for k, key in self._rule_cols.items():
                window[key] += int((view.chosen_rules == k).sum())
        if dirty and not self._dirty:
            window["epochs"] += 1
        self._dirty = dirty
