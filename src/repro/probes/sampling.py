"""Sampling probes: accounting snapshots and every-k-steps trace decode.

Both ride the fused loop.  :class:`AccountingProbe` never touches the
columns at all — it snapshots the ``(steps, moves, rounds)`` totals the
drivers maintain natively.  :class:`TraceProbe` decodes the columns into
a :class:`~repro.core.configuration.Configuration` only every ``k``
steps: full-fidelity tracing (``Simulator(trace=...)``) still forces the
step-by-step loop, but sampled tracing costs one decode per ``k`` fused
steps instead of kicking the whole execution off the fast path.
"""

from __future__ import annotations

from .base import Probe
from .view import ColumnView

__all__ = ["AccountingProbe", "TraceProbe"]


class AccountingProbe(Probe):
    """Periodic ``(steps, moves, rounds)`` snapshots, array-native.

    ``samples`` holds one ``(steps, moves, rounds)`` triple for the
    initial configuration and for every configuration whose step index
    is a multiple of ``every``.  Identical on both tiers (no decoding
    on either).
    """

    name = "accounting"

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.samples: list[tuple[int, int, int]] = []

    def wants_decode(self) -> bool:
        return False

    def on_start(self, sim) -> None:
        self.samples.append(
            (sim.step_count, sim.move_count, sim.rounds.completed)
        )

    def on_step(self, sim, record) -> None:
        if sim.step_count % self.every == 0:
            self.samples.append(
                (sim.step_count, sim.move_count, sim.rounds.completed)
            )

    def on_columns(self, view: ColumnView) -> None:
        if view.phase == "start":
            # Simulator-attached probes already sampled the initial
            # configuration in on_start; batch-attached probes (which
            # have no simulator) sample it here.
            if not self.samples:
                self.samples.append((view.steps, view.moves, view.rounds))
        elif view.steps % self.every == 0:
            self.samples.append((view.steps, view.moves, view.rounds))


class TraceProbe(Probe):
    """Every-``k``-steps configuration snapshots.

    ``samples`` holds ``(step_index, Configuration)`` pairs for the
    initial configuration and every configuration whose step index is a
    multiple of ``every``.  On the vector tier the decode happens inside
    the fused loop through the program's schema; on the decode tier it
    snapshots ``sim.cfg`` — identical configurations either way (the
    schema round-trip is lossless by contract).
    """

    name = "trace-sample"

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.samples: list[tuple[int, object]] = []

    def wants_decode(self) -> bool:
        return False

    def on_start(self, sim) -> None:
        self.samples.append((sim.step_count, sim.cfg.copy()))

    def on_step(self, sim, record) -> None:
        if sim.step_count % self.every == 0:
            self.samples.append((sim.step_count, sim.cfg.copy()))

    def on_columns(self, view: ColumnView) -> None:
        if view.phase == "start":
            # Simulator-attached probes already sampled the initial
            # configuration in on_start; batch-attached probes (which
            # have no simulator) sample it here.
            if not self.samples:
                self.samples.append(
                    (view.steps, view.program.schema.decode(view.cols))
                )
        elif view.steps % self.every == 0:
            self.samples.append(
                (view.steps, view.program.schema.decode(view.cols))
            )
