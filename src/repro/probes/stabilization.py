"""Stabilization measurement as a capability-tiered probe.

:class:`StabilizationProbe` is the vectorized successor of
:class:`~repro.core.detectors.StabilizationDetector`: it records the
``(step, rounds, moves)`` totals at the first configuration satisfying a
legitimacy notion, keeps counting violations afterwards (closure
assertions for predicates claimed closed — the ROADMAP's ``run_past``
suffix monitoring, now fused), and optionally stops the run at the hit
(plus ``run_past`` extra steps).

The legitimacy notion is given twice, once per tier:

* ``predicate`` — a ``Configuration -> bool`` closure (decode tier);
* ``mask`` — the name of a per-process boolean mask on the kernel
  program (``"normal_mask"``, ``"legitimate_mask"``), or a callable
  ``cols -> ndarray`` (vector tier).  The all-processes conjunction of
  the mask must equal the predicate — the probe-equivalence property
  suite asserts the measurements are byte-identical.

When the mask resolves, :meth:`wants_decode` answers ``False`` and the
probe rides the fused loop; when it does not (dict backend, unported
program), the probe falls back to the decode tier — loudly, once per
program type, when a kernel program lacks the expected mask attribute.
"""

from __future__ import annotations

import logging
from typing import Any, Callable

from ..core.exceptions import NotStabilized
from .base import Probe
from .view import ColumnView

__all__ = ["StabilizationProbe", "StopProbe"]

Predicate = Callable[[Any], bool]

_logger = logging.getLogger(__name__)

#: ``ProgramType.mask_attr`` combinations already warned about — one
#: warning per combination (campaigns build thousands of probes).
_MASK_FALLBACK_WARNED: set[str] = set()


def resolve_mask(program, mask) -> Callable | None:
    """``mask`` as a ``cols -> ndarray`` callable bound to ``program``.

    ``mask`` may be a callable (returned unchanged), an attribute name
    on the program, or ``None``.  A *named* mask missing from an
    otherwise-present program warns once — a rename or an unported mask
    would otherwise silently cost the fused fast path.
    """
    if mask is None:
        return None
    if callable(mask):
        return mask
    fn = getattr(program, mask, None) if program is not None else None
    if program is not None and fn is None:
        key = f"{type(program).__name__}.{mask}"
        if key not in _MASK_FALLBACK_WARNED:
            _MASK_FALLBACK_WARNED.add(key)
            _logger.warning(
                "kernel program %s provides no %s; stabilization detection "
                "falls back to per-step decoding (slower, same results)",
                type(program).__name__,
                mask,
            )
    return fn


class StabilizationProbe(Probe):
    """Records when a legitimacy notion first holds; counts violations after.

    Attributes (``None`` until the notion first holds):

    * ``step`` — steps executed before the first hit (0 when the initial
      configuration already satisfies it);
    * ``rounds`` — complete rounds elapsed at the first hit;
    * ``moves`` — total moves executed at the first hit;
    * ``violations_after_hit`` — later configurations violating the
      notion (must stay 0 for closed predicates).

    Parameters
    ----------
    predicate:
        Decode-tier legitimacy test (``Configuration -> bool``).  May be
        ``None`` when a mask is given and the execution is guaranteed to
        stay on the kernel backend.
    mask:
        Vector-tier legitimacy mask: a kernel-program attribute name or
        a ``cols -> ndarray`` callable (see module docstring).
    run_past:
        Extra steps to keep executing after the hit before requesting a
        stop, so closure assertions observe the suffix (ignored when
        ``stop`` is false — the run then never stops on this probe's
        account and the suffix is whatever the caller runs).
    stop:
        Whether to request a stop once hit (+ ``run_past``).  ``False``
        turns the probe into a pure measurement device.
    """

    name = "stabilization"

    def __init__(
        self,
        predicate: Predicate | None = None,
        mask=None,
        name: str = "legitimate",
        run_past: int = 0,
        stop: bool = True,
    ):
        self.predicate = predicate
        self.mask = mask
        self.name = name
        self.run_past = run_past
        self.stop = stop
        self.step: int | None = None
        self.rounds: int | None = None
        self.moves: int | None = None
        self.violations_after_hit = 0
        self._past = 0
        self._mask_fn: Callable | None = mask if callable(mask) else None

    # ------------------------------------------------------------------
    @property
    def hit(self) -> bool:
        return self.step is not None

    def require_hit(self) -> None:
        if not self.hit:
            raise NotStabilized(f"predicate {self.name!r} never held")

    # ------------------------------------------------------------------
    # Capability declaration
    # ------------------------------------------------------------------
    def wants_decode(self) -> bool:
        return self._mask_fn is None

    def mask_fn(self, program) -> Callable | None:
        return resolve_mask(program, self.mask)

    # ------------------------------------------------------------------
    # Shared recording logic (identical on both tiers)
    # ------------------------------------------------------------------
    def _observe(self, holds: bool, steps: int, rounds: int, moves: int) -> None:
        if self.hit:
            if not holds:
                self.violations_after_hit += 1
            self._past += 1
        elif holds:
            self.step, self.rounds, self.moves = steps, rounds, moves

    # ------------------------------------------------------------------
    # Decode tier
    # ------------------------------------------------------------------
    def _holds(self, sim) -> bool:
        # Even off the fused loop, prefer the mask over the kernel
        # columns: no configuration decode, identical result.
        if self._mask_fn is not None and sim._kernel is not None:
            return bool(self._mask_fn(sim._kernel.read).all())
        if self.predicate is None:
            raise ValueError(
                f"stabilization probe {self.name!r} has no decode-tier "
                "predicate and its mask did not resolve against this "
                "simulator's backend"
            )
        return self.predicate(sim.cfg)

    def on_start(self, sim) -> None:
        if self._mask_fn is None:
            self._mask_fn = resolve_mask(sim._program, self.mask)
        if not self.hit and self._holds(sim):
            self.step = sim.step_count
            self.rounds = sim.rounds.completed
            self.moves = sim.move_count

    def on_step(self, sim, record) -> None:
        self._observe(
            self._holds(sim), sim.step_count, sim.rounds.completed, sim.move_count
        )

    # ------------------------------------------------------------------
    # Vector tier
    # ------------------------------------------------------------------
    def on_columns(self, view: ColumnView) -> None:
        if self._mask_fn is None:
            # Batch-attached probes have no simulator (on_start never
            # ran): resolve a named mask against the view's program.
            self._mask_fn = resolve_mask(view.program, self.mask)
            if self._mask_fn is None:
                raise ValueError(
                    f"stabilization probe {self.name!r}: mask {self.mask!r} "
                    f"did not resolve against {type(view.program).__name__}"
                )
        holds = bool(self._mask_fn(view.cols).all())
        if view.phase == "start":
            if not self.hit and holds:
                self.step = view.steps
                self.rounds = view.rounds
                self.moves = view.moves
            return
        self._observe(holds, view.steps, view.rounds, view.moves)

    # ------------------------------------------------------------------
    def done(self) -> bool:
        return self.stop and self.hit and self._past >= self.run_past

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, step={self.step}, "
            f"rounds={self.rounds}, moves={self.moves}, "
            f"violations_after_hit={self.violations_after_hit})"
        )


class StopProbe(StabilizationProbe):
    """``stop_when`` as a declared-capability probe.

    A mask-driven stop condition: the run ends the first time the mask
    (or predicate) holds everywhere, staying fused the whole way —
    unlike the ``stop_when`` closure, which forces per-step decoding.
    ``hit``/``step``/``rounds``/``moves`` record where it fired.
    """

    def __init__(self, predicate: Predicate | None = None, mask=None,
                 name: str = "stop"):
        super().__init__(predicate, mask=mask, name=name, run_past=0, stop=True)
