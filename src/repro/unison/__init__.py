"""Unison: Algorithm U, its specification, and baseline algorithms."""

from .boulinier import BoulinierUnison, couvreur_parameters, default_parameters
from .skew import edge_offset, max_edge_skew, phase_spread
from .spec import (
    SafetyMonitor,
    circularly_close,
    increment_counts,
    liveness_holds,
    safety_holds,
    safety_violations,
)
from .unison import CLOCK, Unison

__all__ = [
    "Unison",
    "CLOCK",
    "BoulinierUnison",
    "default_parameters",
    "couvreur_parameters",
    "SafetyMonitor",
    "circularly_close",
    "increment_counts",
    "liveness_holds",
    "safety_holds",
    "safety_violations",
    "edge_offset",
    "max_edge_skew",
    "phase_spread",
]
