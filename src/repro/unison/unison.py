"""Algorithm U — asynchronous unison (paper, Algorithm 2, Section 5).

Each process holds a periodic clock ``c_u ∈ {0, …, K−1}`` with ``K > n``.
Starting from ``γ_init`` (all clocks zero), ``U`` implements unison in
anonymous networks: a process increments (mod ``K``) when it is on time or
one increment late with respect to every neighbor.  ``U`` is *not*
self-stabilizing — ``U ∘ SDR`` is (Theorem 6) with stabilization in at most
``3n`` rounds and ``O(D·n²)`` moves.

As an :class:`~repro.reset.interface.InputAlgorithm`, ``U`` exports to SDR:

* ``P_ICorrect(u) ≡ ∀v ∈ N(u): c_v ∈ {c_u ⊖ 1, c_u, c_u ⊕ 1}``;
* ``P_reset(u) ≡ c_u = 0``;
* ``reset(u) : c_u := 0``.
"""

from __future__ import annotations

from random import Random
from typing import Any

from ..core.configuration import Configuration
from ..core.exceptions import AlgorithmError
from ..core.graph import Network
from ..reset.interface import InputAlgorithm

__all__ = ["Unison", "CLOCK"]

#: Variable name of the clock.
CLOCK = "c"


class Unison(InputAlgorithm):
    """The paper's Algorithm U.

    Parameters
    ----------
    network:
        Communication graph (anonymous: identifiers are never read).
    period:
        The period ``K``; must satisfy ``K > n``.  Defaults to ``n + 1``,
        the smallest legal value.
    """

    name = "U"
    mutually_exclusive_rules = True

    def __init__(self, network: Network, period: int | None = None):
        super().__init__(network)
        self.period = network.n + 1 if period is None else int(period)
        if self.period <= network.n:
            raise AlgorithmError(
                f"unison requires K > n (got K={self.period}, n={network.n})"
            )

    # ------------------------------------------------------------------
    # Predicates (Algorithm 2)
    # ------------------------------------------------------------------
    def p_ok(self, cfg: Configuration, u: int, v: int) -> bool:
        """``P_Ok(u, v) ≡ c_v ∈ {(c_u − 1) % K, c_u, (c_u + 1) % K}``."""
        cu = cfg[u][CLOCK]
        cv = cfg[v][CLOCK]
        k = self.period
        return cv in ((cu - 1) % k, cu, (cu + 1) % k)

    def p_icorrect(self, cfg: Configuration, u: int) -> bool:
        """``P_ICorrect(u) ≡ ∀v ∈ N(u), P_Ok(u, v)``."""
        return all(self.p_ok(cfg, u, v) for v in self.network.neighbors(u))

    def p_reset(self, cfg: Configuration, u: int) -> bool:
        """``P_reset(u) ≡ c_u = 0``."""
        return cfg[u][CLOCK] == 0

    def p_up(self, cfg: Configuration, u: int) -> bool:
        """``P_Up(u) ≡ ∀v ∈ N(u), c_v ∈ {c_u, (c_u + 1) % K}``.

        ``u`` may tick when every neighbor is on time or one ahead.
        """
        cu = cfg[u][CLOCK]
        k = self.period
        ahead = (cu + 1) % k
        return all(cfg[v][CLOCK] in (cu, ahead) for v in self.network.neighbors(u))

    # ------------------------------------------------------------------
    # Algorithm interface
    # ------------------------------------------------------------------
    def variables(self) -> tuple[str, ...]:
        return (CLOCK,)

    def rule_names(self) -> tuple[str, ...]:
        return ("rule_U",)

    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        self.check_rule(rule)
        return self.p_clean(cfg, u) and self.p_up(cfg, u)

    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        self.check_rule(rule)
        return {CLOCK: (cfg[u][CLOCK] + 1) % self.period}

    def reset_updates(self, cfg: Configuration, u: int) -> dict[str, Any]:
        return {CLOCK: 0}

    def input_rule_set(self):
        try:
            from .kernelized import unison_rule_set
        except ModuleNotFoundError as exc:
            if exc.name and exc.name.split(".")[0] == "numpy":
                return None  # numpy missing: dict backend only
            raise
        return unison_rule_set(self)

    def initial_state(self, u: int) -> dict[str, Any]:
        return {CLOCK: 0}

    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        return {CLOCK: rng.randrange(self.period)}
