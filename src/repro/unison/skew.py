"""Clock-skew analytics for unison executions.

Beyond the binary safety predicate, experiments sometimes want *how far*
clocks have drifted: the per-edge circular offset and the global phase
spread (how many distinct "ticks" coexist).  For configurations satisfying
safety, neighbor offsets are in {−1, 0, +1} and the global spread is at
most the network diameter + 1.
"""

from __future__ import annotations

from ..core.configuration import Configuration
from ..core.graph import Network

__all__ = ["edge_offset", "max_edge_skew", "phase_spread"]


def edge_offset(a: int, b: int, period: int) -> int:
    """Signed circular offset from ``a`` to ``b`` in ``(−K/2, K/2]``."""
    diff = (b - a) % period
    if diff > period // 2:
        diff -= period
    return diff


def max_edge_skew(
    network: Network, cfg: Configuration, period: int, clock_var: str = "c"
) -> int:
    """Largest absolute circular offset across any edge."""
    worst = 0
    for u, v in network.edges():
        offset = edge_offset(cfg[u][clock_var], cfg[v][clock_var], period)
        worst = max(worst, abs(offset))
    return worst


def phase_spread(
    network: Network, cfg: Configuration, period: int, clock_var: str = "c"
) -> int:
    """Number of increments separating the most- and least-advanced clocks.

    Computed along shortest paths from process 0 by accumulating signed
    edge offsets (well-defined whenever every edge is safe, since offsets
    are then in {−1, 0, 1} and consistent around cycles of length < K).
    """
    import networkx as nx

    graph = network.to_networkx()
    level = {0: 0}
    for u, v in nx.bfs_edges(graph, 0):
        level[v] = level[u] + edge_offset(
            cfg[u][clock_var], cfg[v][clock_var], period
        )
    values = list(level.values())
    return max(values) - min(values)
