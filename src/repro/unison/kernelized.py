"""Kernel (struct-of-arrays) ports of the unison algorithms.

:class:`UnisonKernelProgram` is Algorithm U.  One int64 column holds
every clock; all of Algorithm 2's predicates are congruence windows on
the per-edge clock difference ``(c_v − c_u) mod K``:

* ``P_Ok``   ⇔ difference ∈ {0, 1, K−1};
* ``P_Up``   ⇔ difference ∈ {0, 1} for every neighbor;
* ``P_reset``⇔ ``c_u = 0``.

:class:`BoulinierKernelProgram` is the reset-tail baseline
(:class:`~repro.unison.boulinier.BoulinierUnison`).  Its extended clock
``r ∈ {−α..−1} ∪ {0..K−1}`` stays one int64 column; the guards become
per-edge window tests (normal advance, tail climb, tail exit) plus the
vectorized local-comparability predicate — circular within one increment
when both endpoints are normal, linear otherwise — whose negation drives
the reset rule.

Equivalence with the dict implementations is cross-checked by the
simulator's paranoid lockstep mode and the backend-equivalence property
suite.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import AlgorithmError
from ..core.kernel.csr import CSRAdjacency
from ..core.kernel.programs import InputKernelProgram, KernelProgram
from ..core.kernel.schema import Schema, Var
from .boulinier import RCLOCK
from .unison import CLOCK

__all__ = ["UnisonKernelProgram", "BoulinierKernelProgram"]


class UnisonKernelProgram(InputKernelProgram):
    """Vectorized guards/actions of the paper's Algorithm U."""

    __slots__ = ("csr", "period", "schema", "rules")

    def __init__(self, algorithm):
        self.csr = CSRAdjacency(algorithm.network)
        self.period = algorithm.period
        self.schema = Schema(Var.int(CLOCK))
        self.rules = algorithm.rule_names()

    def tiled(self, copies: int) -> "UnisonKernelProgram":
        prog = object.__new__(UnisonKernelProgram)
        prog.csr = self.csr.tile(copies)
        prog.period = self.period
        prog.schema = self.schema
        prog.rules = self.rules
        return prog

    # ------------------------------------------------------------------
    def _edge_diffs(self, cols) -> np.ndarray:
        """``(c_v − c_u) mod K`` per edge slot (owner u, neighbor v)."""
        clock = cols[CLOCK]
        return (self.csr.pull(clock) - self.csr.own(clock)) % self.period

    # ------------------------------------------------------------------
    # SDR input interface
    # ------------------------------------------------------------------
    def icorrect_mask(self, cols) -> np.ndarray:
        # diff ∈ [0, K), so {0, 1} collapses to one comparison.
        diff = self._edge_diffs(cols)
        ok = (diff <= 1) | (diff == self.period - 1)
        return self.csr.all_neigh(ok)

    def reset_mask(self, cols) -> np.ndarray:
        return cols[CLOCK] == 0

    def apply_reset(self, idx, read, write) -> None:
        write[CLOCK][idx] = 0

    # ------------------------------------------------------------------
    # Guards and actions
    # ------------------------------------------------------------------
    def guard_masks(self, cols, clean=None) -> dict[str, np.ndarray]:
        diff = self._edge_diffs(cols)
        up = self.csr.all_neigh(diff <= 1)
        if clean is not None:
            up &= clean
        return {self.rules[0]: up}

    def host_masks(self, cols, clean):
        # One pass over the edge differences serves all three masks.
        diff = self._edge_diffs(cols)
        near = diff <= 1
        icorrect = self.csr.all_neigh(near | (diff == self.period - 1))
        up = self.csr.all_neigh(near) & clean
        return icorrect, self.reset_mask(cols), {self.rules[0]: up}

    def apply(self, rule, idx, read, write) -> None:
        write[CLOCK][idx] = (read[CLOCK][idx] + 1) % self.period


class BoulinierKernelProgram(KernelProgram):
    """Vectorized guards/actions of the reset-tail unison baseline."""

    __slots__ = ("csr", "period", "alpha", "schema", "rules")

    def __init__(self, algorithm):
        self.csr = CSRAdjacency(algorithm.network)
        self.period = algorithm.period
        self.alpha = algorithm.alpha
        self.schema = Schema(Var.int(RCLOCK))
        self.rules = algorithm.rule_names()

    def tiled(self, copies: int) -> "BoulinierKernelProgram":
        prog = object.__new__(BoulinierKernelProgram)
        prog.csr = self.csr.tile(copies)
        prog.period = self.period
        prog.alpha = self.alpha
        prog.schema = self.schema
        prog.rules = self.rules
        return prog

    # ------------------------------------------------------------------
    def _comparable_edges(self, ru, rv) -> np.ndarray:
        """Local comparability per edge slot (owner value ``ru``)."""
        k = self.period
        both_normal = (ru >= 0) & (rv >= 0)
        diff = ru - rv
        circular = ((diff % k) <= 1) | ((-diff % k) <= 1)
        linear = np.abs(diff) <= 1
        return np.where(both_normal, circular, linear)

    # ------------------------------------------------------------------
    def guard_masks(self, cols) -> dict[str, np.ndarray]:
        csr = self.csr
        r = cols[RCLOCK]
        ru = csr.own(r)
        rv = csr.pull(r)
        normal = r >= 0

        # RA: a normal process seeing an incomparable neighbor.
        ra = normal & csr.any_neigh(~self._comparable_edges(ru, rv))
        # NA: all neighbors on time or one ahead — and RA takes priority.
        ahead = (ru + 1) % self.period
        na = normal & csr.all_neigh((rv == ru) | (rv == ahead)) & ~ra
        # TA: deep-tail process with no neighbor strictly below it.
        ta = (r <= -2) & csr.all_neigh(rv >= ru)
        # TO: at −1 with the whole neighborhood in {−1, 0, 1}.
        to = (r == -1) & csr.all_neigh((rv >= -1) & (rv <= 1))

        return {
            "rule_NA": na,
            "rule_TA": ta,
            "rule_TO": to,
            "rule_RA": ra,
        }

    def apply(self, rule, idx, read, write) -> None:
        r = read[RCLOCK]
        if rule == "rule_NA":
            write[RCLOCK][idx] = (r[idx] + 1) % self.period
        elif rule == "rule_TA":
            write[RCLOCK][idx] = r[idx] + 1
        elif rule == "rule_TO":
            write[RCLOCK][idx] = 0
        elif rule == "rule_RA":
            write[RCLOCK][idx] = -self.alpha
        else:
            raise AlgorithmError(f"boulinier kernel program: unknown rule {rule!r}")

    # ------------------------------------------------------------------
    def legitimate_mask(self, cols) -> np.ndarray:
        """Per-process conjunct of ``is_legitimate``: no tail, edges comparable."""
        csr = self.csr
        r = cols[RCLOCK]
        comparable = self._comparable_edges(csr.own(r), csr.pull(r))
        return (r >= 0) & csr.all_neigh(comparable)
