"""Kernel (struct-of-arrays) port of Algorithm U.

One int64 column holds every clock; all of Algorithm 2's predicates are
congruence windows on the per-edge clock difference ``(c_v − c_u) mod K``:

* ``P_Ok``   ⇔ difference ∈ {0, 1, K−1};
* ``P_Up``   ⇔ difference ∈ {0, 1} for every neighbor;
* ``P_reset``⇔ ``c_u = 0``.

Equivalence with :class:`~repro.unison.unison.Unison` is cross-checked by
the simulator's paranoid lockstep mode and the backend-equivalence
property suite.
"""

from __future__ import annotations

import numpy as np

from ..core.kernel.csr import CSRAdjacency
from ..core.kernel.programs import InputKernelProgram
from ..core.kernel.schema import Schema, Var
from .unison import CLOCK

__all__ = ["UnisonKernelProgram"]


class UnisonKernelProgram(InputKernelProgram):
    """Vectorized guards/actions of the paper's Algorithm U."""

    __slots__ = ("csr", "period", "schema", "rules")

    def __init__(self, algorithm):
        self.csr = CSRAdjacency(algorithm.network)
        self.period = algorithm.period
        self.schema = Schema(Var.int(CLOCK))
        self.rules = algorithm.rule_names()

    # ------------------------------------------------------------------
    def _edge_diffs(self, cols) -> np.ndarray:
        """``(c_v − c_u) mod K`` per edge slot (owner u, neighbor v)."""
        clock = cols[CLOCK]
        return (self.csr.pull(clock) - self.csr.own(clock)) % self.period

    # ------------------------------------------------------------------
    # SDR input interface
    # ------------------------------------------------------------------
    def icorrect_mask(self, cols) -> np.ndarray:
        diff = self._edge_diffs(cols)
        ok = (diff == 0) | (diff == 1) | (diff == self.period - 1)
        return self.csr.all_neigh(ok)

    def reset_mask(self, cols) -> np.ndarray:
        return cols[CLOCK] == 0

    def apply_reset(self, idx, read, write) -> None:
        write[CLOCK][idx] = 0

    # ------------------------------------------------------------------
    # Guards and actions
    # ------------------------------------------------------------------
    def guard_masks(self, cols, clean=None) -> dict[str, np.ndarray]:
        diff = self._edge_diffs(cols)
        up = self.csr.all_neigh((diff == 0) | (diff == 1))
        if clean is not None:
            up &= clean
        return {self.rules[0]: up}

    def host_masks(self, cols, clean):
        # One pass over the edge differences serves all three masks.
        diff = self._edge_diffs(cols)
        near = (diff == 0) | (diff == 1)
        icorrect = self.csr.all_neigh(near | (diff == self.period - 1))
        up = self.csr.all_neigh(near) & clean
        return icorrect, self.reset_mask(cols), {self.rules[0]: up}

    def apply(self, rule, idx, read, write) -> None:
        write[CLOCK][idx] = (read[CLOCK][idx] + 1) % self.period
