"""IR definitions of the unison algorithms.

The handwritten numpy twins that used to live here are gone: each
algorithm now states its rules once, as :mod:`repro.ir` expressions, and
the kernel programs are *generated* (:mod:`repro.ir.kernelc`).  All of
Algorithm 2's predicates are congruence windows on the per-edge clock
difference ``(c_v − c_u) mod K``:

* ``P_Ok``   ⇔ difference ∈ {0, 1, K−1};
* ``P_Up``   ⇔ difference ∈ {0, 1} for every neighbor;
* ``P_reset``⇔ ``c_u = 0``.

:func:`boulinier_rule_set` is the reset-tail baseline
(:class:`~repro.unison.boulinier.BoulinierUnison`): the extended clock
``r ∈ {−α..−1} ∪ {0..K−1}`` stays one int64 column, and the guards are
per-edge window tests plus the local-comparability predicate — circular
within one increment when both endpoints are normal, linear otherwise.

Equivalence with the dict implementations is cross-checked by the
simulator's paranoid lockstep mode, the backend-equivalence property
suite, and ``python -m repro.ir check``.
"""

from __future__ import annotations

from ..core.kernel.schema import Schema, Var
from ..ir import (
    Assign,
    InputRuleSet,
    Rule,
    RuleSet,
    absval,
    all_neighbors,
    any_neighbors,
    col,
    neigh,
    own,
    where,
)
from ..ir.kernelc import IRInputKernelProgram, IRKernelProgram
from .boulinier import RCLOCK
from .unison import CLOCK

__all__ = [
    "unison_rule_set",
    "boulinier_rule_set",
    "UnisonKernelProgram",
    "BoulinierKernelProgram",
]


def unison_rule_set(algorithm) -> InputRuleSet:
    """Algorithm U as an :class:`~repro.ir.rules.InputRuleSet`."""
    period = algorithm.period
    clock = col(CLOCK)
    # (c_v − c_u) mod K per edge slot (owner u, neighbor v); diff ∈ [0, K),
    # so the window {0, 1} collapses to one comparison.
    diff = (neigh(clock) - own(clock)) % period
    near = diff <= 1
    return InputRuleSet(
        "unison",
        algorithm.network,
        Schema(Var.int(CLOCK)),
        [
            Rule(
                algorithm.rule_names()[0],
                all_neighbors(near),
                [Assign(CLOCK, (clock + 1) % period)],
                clean_gated=True,
            )
        ],
        icorrect=all_neighbors(near | (diff == period - 1)),
        reset=clock == 0,
        reset_action=[Assign(CLOCK, 0)],
    )


def boulinier_rule_set(algorithm) -> RuleSet:
    """The reset-tail unison baseline as a :class:`~repro.ir.rules.RuleSet`."""
    period, alpha = algorithm.period, algorithm.alpha
    r = col(RCLOCK)
    ru, rv = own(r), neigh(r)

    # Local comparability per edge: circular within one increment when
    # both endpoints are normal, linear otherwise.
    diff = ru - rv
    circular = ((diff % period) <= 1) | (((-diff) % period) <= 1)
    comparable = where((ru >= 0) & (rv >= 0), circular, absval(diff) <= 1)

    normal = r >= 0
    # RA: a normal process seeing an incomparable neighbor (priority).
    ra = normal & any_neighbors(~comparable)
    # NA: all neighbors on time or one ahead — and RA takes priority.
    ahead = (ru + 1) % period
    na = normal & all_neighbors((rv == ru) | (rv == ahead)) & ~ra
    # TA: deep-tail process with no neighbor strictly below it.
    ta = (r <= -2) & all_neighbors(rv >= ru)
    # TO: at −1 with the whole neighborhood in {−1, 0, 1}.
    to = (r == -1) & all_neighbors((rv >= -1) & (rv <= 1))

    return RuleSet(
        "boulinier",
        algorithm.network,
        Schema(Var.int(RCLOCK)),
        [
            Rule("rule_NA", na, [Assign(RCLOCK, (r + 1) % period)]),
            Rule("rule_TA", ta, [Assign(RCLOCK, r + 1)]),
            Rule("rule_TO", to, [Assign(RCLOCK, 0)]),
            Rule("rule_RA", ra, [Assign(RCLOCK, -alpha)]),
        ],
        predicates={"legitimate": normal & all_neighbors(comparable)},
    )


class UnisonKernelProgram(IRInputKernelProgram):
    """Generated kernel program of the paper's Algorithm U."""

    def __init__(self, algorithm):
        super().__init__(unison_rule_set(algorithm))


class BoulinierKernelProgram(IRKernelProgram):
    """Generated kernel program of the reset-tail unison baseline."""

    def __init__(self, algorithm):
        super().__init__(boulinier_rule_set(algorithm))
