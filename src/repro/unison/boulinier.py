"""Baseline: reset-tail asynchronous unison in the style of Boulinier et al.

The paper compares ``U ∘ SDR`` against the self-stabilizing unison of
Boulinier, Petit and Villain (PODC 2004, reference [11]), whose stabilization
time is ``O(n)`` rounds and ``O(D·n³ + α·n²)`` moves (as analyzed in [23]).
No public artifact of [11] exists, so this module provides a faithful-shape
**reconstruction** of the classical parametric "reset-tail" algorithm, the
family that also contains Couvreur et al.'s algorithm [20] as a
parameterization (see :func:`couvreur_parameters`).

Model
-----
Each process holds a clock ``r ∈ {−α, …, −1} ∪ {0, …, K−1}``: negative
values form the *tail* (reset zone), non-negative values are normal clock
values counted modulo ``K``.  Two values are *locally comparable* when they
differ by at most one increment — circularly if both are normal, in ℤ if
either is in the tail.

Rules
-----
* ``rule_NA`` (normal advance): a normal process whose neighbors are all on
  time or one ahead ticks modulo ``K``;
* ``rule_TA`` (tail advance): a tail process below ``−1`` climbs one step
  when no neighbor is strictly below it;
* ``rule_TO`` (tail out): a process at ``−1`` enters the normal zone at
  ``0`` when every neighbor is in ``{−1, 0, 1}``;
* ``rule_RA`` (reset): a normal process seeing an incomparable neighbor
  jumps to the bottom of the tail ``−α``.

A reset therefore floods every process whose clock is incomparable with the
spreading tail — the *global, uncoordinated* behaviour that SDR's
cooperative partial resets are designed to avoid; the move-complexity gap
measured by the benchmarks comes precisely from this flooding plus the
``α``-deep climb out.

Parameter validity: the original analysis requires ``K > C_G`` and
``α ≥ T_G − 2``.  :func:`default_parameters` picks the conservative
``K = 2n + 2`` and ``α = n``, valid on every graph since ``C_G ≤ n`` and
``T_G ≤ n``.
"""

from __future__ import annotations

from random import Random
from typing import Any

from ..core.algorithm import Algorithm
from ..core.configuration import Configuration
from ..core.exceptions import AlgorithmError
from ..core.graph import Network

__all__ = [
    "BoulinierUnison",
    "default_parameters",
    "couvreur_parameters",
]

#: Variable name of the extended clock.
RCLOCK = "r"


def default_parameters(n: int) -> tuple[int, int]:
    """Conservative ``(K, α)`` valid on any ``n``-process graph."""
    return 2 * n + 2, n


def couvreur_parameters(n: int) -> tuple[int, int]:
    """Parameters approximating Couvreur et al. [20] (``K > n²``, reset≈0).

    The original resets clocks to 0; a tail of depth 1 is the closest member
    of the parametric family (reset to ``−1``, one climb step out).
    """
    return n * n + 1, 1


class BoulinierUnison(Algorithm):
    """Reconstruction of the reset-tail self-stabilizing unison [11].

    Parameters
    ----------
    network: the communication graph (anonymous).
    period:  the clock period ``K`` (normal zone size).
    alpha:   the tail depth ``α ≥ 1``.
    """

    name = "boulinier"
    mutually_exclusive_rules = True

    def __init__(self, network: Network, period: int | None = None, alpha: int | None = None):
        super().__init__(network)
        default_k, default_a = default_parameters(network.n)
        self.period = default_k if period is None else int(period)
        self.alpha = default_a if alpha is None else int(alpha)
        if self.period < 3:
            raise AlgorithmError("period K must be at least 3")
        if self.alpha < 1:
            raise AlgorithmError("tail depth alpha must be at least 1")

    # ------------------------------------------------------------------
    # Clock-value helpers
    # ------------------------------------------------------------------
    def comparable(self, a: int, b: int) -> bool:
        """Local comparability: at most one increment apart."""
        if a >= 0 and b >= 0:
            k = self.period
            return (a - b) % k <= 1 or (b - a) % k <= 1
        return abs(a - b) <= 1

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------
    def _guard_na(self, cfg: Configuration, u: int) -> bool:
        ru = cfg[u][RCLOCK]
        if ru < 0:
            return False
        ahead = (ru + 1) % self.period
        return all(cfg[v][RCLOCK] in (ru, ahead) for v in self.network.neighbors(u))

    def _guard_ta(self, cfg: Configuration, u: int) -> bool:
        ru = cfg[u][RCLOCK]
        if ru >= -1:
            return False
        return all(cfg[v][RCLOCK] >= ru for v in self.network.neighbors(u))

    def _guard_to(self, cfg: Configuration, u: int) -> bool:
        if cfg[u][RCLOCK] != -1:
            return False
        return all(cfg[v][RCLOCK] in (-1, 0, 1) for v in self.network.neighbors(u))

    def _guard_ra(self, cfg: Configuration, u: int) -> bool:
        ru = cfg[u][RCLOCK]
        if ru < 0:
            return False
        return any(
            not self.comparable(ru, cfg[v][RCLOCK]) for v in self.network.neighbors(u)
        )

    # ------------------------------------------------------------------
    # Algorithm interface
    # ------------------------------------------------------------------
    def variables(self) -> tuple[str, ...]:
        return (RCLOCK,)

    def rule_names(self) -> tuple[str, ...]:
        return ("rule_NA", "rule_TA", "rule_TO", "rule_RA")

    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        if rule == "rule_NA":
            # A normal process with an incomparable neighbor must reset, not
            # advance: RA takes priority by excluding NA.
            return self._guard_na(cfg, u) and not self._guard_ra(cfg, u)
        if rule == "rule_TA":
            return self._guard_ta(cfg, u)
        if rule == "rule_TO":
            return self._guard_to(cfg, u)
        if rule == "rule_RA":
            return self._guard_ra(cfg, u)
        self.check_rule(rule)
        return False

    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        ru = cfg[u][RCLOCK]
        if rule == "rule_NA":
            return {RCLOCK: (ru + 1) % self.period}
        if rule == "rule_TA":
            return {RCLOCK: ru + 1}
        if rule == "rule_TO":
            return {RCLOCK: 0}
        if rule == "rule_RA":
            return {RCLOCK: -self.alpha}
        self.check_rule(rule)
        raise AssertionError("unreachable")

    def initial_state(self, u: int) -> dict[str, Any]:
        return {RCLOCK: 0}

    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        return {RCLOCK: rng.randrange(-self.alpha, self.period)}

    def rule_set(self):
        """IR definition (see :mod:`repro.unison.kernelized`)."""
        try:
            from .kernelized import boulinier_rule_set
        except ModuleNotFoundError as exc:
            if exc.name and exc.name.split(".")[0] == "numpy":
                return None  # numpy missing: dict backend only
            raise
        return boulinier_rule_set(self)

    # ------------------------------------------------------------------
    # Legitimacy
    # ------------------------------------------------------------------
    def is_legitimate(self, cfg: Configuration, live=None) -> bool:
        """No tail values and every edge circularly within one increment.

        ``live`` restricts the check to the live subsystem under
        topology churn (crashed processes and their frozen registers
        are excluded; their incident links are already gone from the
        mutated network).
        """
        if live is None:
            procs = self.network.processes()
            edges = self.network.edges()
        else:
            alive = set(live)
            procs = alive
            edges = [
                (u, v) for u, v in self.network.edges()
                if u in alive and v in alive
            ]
        if any(cfg[u][RCLOCK] < 0 for u in procs):
            return False
        return all(
            self.comparable(cfg[u][RCLOCK], cfg[v][RCLOCK])
            for u, v in edges
        )
