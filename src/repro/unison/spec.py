"""The unison specification (paper, Section 5.1) as executable checkers.

* **Safety** — at every instant, the clocks of every two neighbors differ
  by at most one increment (modulo the period).
* **Liveness** — every process increments its clock infinitely often.

Safety is a per-configuration predicate; liveness is checked over bounded
execution suffixes (every process must keep accumulating increments).
"""

from __future__ import annotations

from typing import Iterable

from ..core.configuration import Configuration
from ..core.graph import Network
from ..core.trace import Trace

__all__ = [
    "circularly_close",
    "safety_holds",
    "safety_violations",
    "SafetyMonitor",
    "increment_counts",
    "liveness_holds",
]


def circularly_close(a: int, b: int, period: int) -> bool:
    """Whether two clock values differ by at most one increment mod period."""
    return b in ((a - 1) % period, a, (a + 1) % period)


def safety_violations(
    network: Network, cfg: Configuration, period: int, clock_var: str = "c"
) -> list[tuple[int, int]]:
    """Edges whose endpoint clocks violate the unison safety predicate."""
    bad = []
    for u, v in network.edges():
        if not circularly_close(cfg[u][clock_var], cfg[v][clock_var], period):
            bad.append((u, v))
    return bad


def safety_holds(
    network: Network, cfg: Configuration, period: int, clock_var: str = "c"
) -> bool:
    """Whether the unison safety predicate holds on every edge."""
    return not safety_violations(network, cfg, period, clock_var)


class SafetyMonitor:
    """Simulator observer counting configurations that violate safety.

    Attach after stabilization (or from the start, to measure how long the
    system stays unsafe).  ``violations`` counts post-step configurations
    with at least one unsafe edge; ``first_safe_step`` records when the
    predicate first held.
    """

    def __init__(self, network: Network, period: int, clock_var: str = "c"):
        self.network = network
        self.period = period
        self.clock_var = clock_var
        self.violations = 0
        self.first_safe_step: int | None = None

    def on_start(self, sim) -> None:
        self._check(sim, step=0)

    def __call__(self, sim, record) -> None:
        self._check(sim, step=sim.step_count)

    def _check(self, sim, step: int) -> None:
        if safety_holds(self.network, sim.cfg, self.period, self.clock_var):
            if self.first_safe_step is None:
                self.first_safe_step = step
        else:
            self.violations += 1


def increment_counts(trace: Trace, increment_rules: Iterable[str] = ("rule_U",)) -> dict[int, int]:
    """How many clock increments each process performed in a trace."""
    rules = set(increment_rules)
    counts: dict[int, int] = {}
    for record in trace:
        for u, rule in record.selection.items():
            if rule in rules:
                counts[u] = counts.get(u, 0) + 1
    return counts


def liveness_holds(
    trace: Trace,
    n: int,
    min_increments: int = 1,
    increment_rules: Iterable[str] = ("rule_U",),
) -> bool:
    """Bounded liveness check: every process incremented ≥ ``min_increments``.

    Infinitely-often cannot be observed on a finite prefix; the tests run a
    suffix long enough that ``min_increments`` per process certifies that no
    process is starved.
    """
    counts = increment_counts(trace, increment_rules)
    return all(counts.get(u, 0) >= min_increments for u in range(n))
