"""Bound formulas, metrics, and statistics for the experiment suite."""

from . import bounds
from .convergence import bound_margin, group_trials, summarize_trials
from .metrics import RunMetrics, collect_metrics
from .stats import Summary, fit_power_law, summarize

__all__ = [
    "bounds",
    "RunMetrics",
    "collect_metrics",
    "Summary",
    "group_trials",
    "summarize_trials",
    "bound_margin",
    "summarize",
    "fit_power_law",
]
