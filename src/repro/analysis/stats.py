"""Aggregation of repeated-trial measurements (pure Python, no numpy needed).

Experiments run many seeds per parameter point; :class:`Summary` collapses
the per-trial samples into the statistics the tables report, and
:func:`fit_power_law` estimates growth exponents for the log–log figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Summary", "summarize", "fit_power_law"]


@dataclass(frozen=True)
class Summary:
    """Order statistics of one metric over repeated trials."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float
    median: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} min={self.minimum:.0f} "
            f"max={self.maximum:.0f} sd={self.stddev:.1f}"
        )


def summarize(samples: Iterable[float]) -> Summary:
    """Summarize a non-empty collection of samples."""
    values = sorted(float(x) for x in samples)
    if not values:
        raise ValueError("cannot summarize an empty sample set")
    count = len(values)
    mean = sum(values) / count
    var = sum((x - mean) ** 2 for x in values) / count
    mid = count // 2
    median = values[mid] if count % 2 else (values[mid - 1] + values[mid]) / 2
    return Summary(
        count=count,
        mean=mean,
        minimum=values[0],
        maximum=values[-1],
        stddev=math.sqrt(var),
        median=median,
    )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares fit of ``y = c·x^e`` in log–log space.

    Returns ``(exponent, constant)``.  Used by the figure benches to verify
    growth *shapes* (e.g. moves ~ n² for ``U ∘ SDR`` vs ~ n³ for the
    baseline) without asserting absolute values.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit requires positive values")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((x - mx) ** 2 for x in lx)
    sxy = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    exponent = sxy / sxx if sxx else 0.0
    constant = math.exp(my - exponent * mx)
    return exponent, constant
