"""Aggregation of trial sweeps into grouped summaries.

The experiment harness produces flat :class:`~repro.harness.runner.Trial`
records; :func:`summarize_trials` groups them by any attribute combination
and summarizes any metric, which is what custom analyses outside the
built-in experiments usually need::

    trials = sweep(run_unison_trial, nets, range(10), scenario="gradient")
    for key, summary in summarize_trials(trials, "moves", by=("n",)).items():
        print(key, summary)
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .stats import Summary, summarize

__all__ = ["group_trials", "summarize_trials", "bound_margin"]


def _key_of(trial, by: Sequence[str]) -> tuple:
    parts = []
    for attr in by:
        if hasattr(trial, attr):
            parts.append(getattr(trial, attr))
        else:
            parts.append(trial.extra.get(attr))
    return tuple(parts)


def group_trials(trials: Iterable, by: Sequence[str]) -> dict[tuple, list]:
    """Group trials by attribute names (falls back to ``extra`` keys)."""
    groups: dict[tuple, list] = {}
    for trial in trials:
        groups.setdefault(_key_of(trial, by), []).append(trial)
    return groups


def summarize_trials(
    trials: Iterable,
    metric: str,
    by: Sequence[str] = ("n",),
) -> dict[tuple, Summary]:
    """Per-group order statistics of one metric over a sweep."""
    summaries = {}
    for key, group in sorted(group_trials(trials, by).items()):
        values = [getattr(t, metric) for t in group]
        summaries[key] = summarize(values)
    return summaries


def bound_margin(
    trials: Iterable,
    metric: str,
    bound_fn: Callable,
    args: Sequence[str] = ("n",),
) -> float:
    """Worst measured/bound ratio over a sweep (must stay ≤ 1.0).

    ``bound_fn`` receives the trial attributes named in ``args`` — e.g.
    ``bound_margin(trials, "rounds", bounds.unison_rounds_bound)`` or
    ``bound_margin(trials, "moves", bounds.unison_move_bound,
    args=("n", "diameter"))``.
    """
    worst = 0.0
    for trial in trials:
        bound = bound_fn(*(getattr(trial, a) for a in args))
        if bound <= 0:
            raise ValueError(f"bound evaluated non-positive for {trial}")
        worst = max(worst, getattr(trial, metric) / bound)
    return worst
