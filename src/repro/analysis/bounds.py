"""The paper's complexity bounds as executable formulas.

Every theorem/corollary bound that the experiments validate lives here with
its provenance, so benchmark assertions read
``measured <= unison_move_bound(n, D)`` instead of magic numbers.
"""

from __future__ import annotations

__all__ = [
    "sdr_moves_per_process_bound",
    "sdr_rounds_bound",
    "segments_bound",
    "unison_move_bound",
    "unison_rounds_bound",
    "unison_standalone_moves_per_process_bound",
    "fga_standalone_moves_per_process_bound",
    "fga_standalone_move_bound",
    "fga_standalone_rounds_bound",
    "fga_sdr_move_bound",
    "fga_sdr_rounds_bound",
    "boulinier_move_shape",
]


def sdr_moves_per_process_bound(n: int) -> int:
    """Corollary 4: any process executes ≤ ``3n + 3`` SDR moves."""
    return 3 * n + 3


def sdr_rounds_bound(n: int) -> int:
    """Corollary 5: a normal configuration is reached within ``3n`` rounds."""
    return 3 * n


def segments_bound(n: int) -> int:
    """Remark 5: every execution of ``I ∘ SDR`` has ≤ ``n + 1`` segments."""
    return n + 1


def unison_standalone_moves_per_process_bound(diameter: int) -> int:
    """Lemma 20: standalone U from a non-(Clean ∧ ICorrect) configuration —
    each process moves at most ``3D`` times."""
    return 3 * diameter


def unison_move_bound(n: int, diameter: int) -> int:
    """Theorem 6 (explicit constant from its proof):
    ``(3D+3)·n² + (3D+1)·(n−1) + 1`` moves to a normal configuration."""
    return (3 * diameter + 3) * n * n + (3 * diameter + 1) * (n - 1) + 1


def unison_rounds_bound(n: int) -> int:
    """Theorem 7: ``U ∘ SDR`` stabilizes within ``3n`` rounds."""
    return 3 * n


def fga_standalone_moves_per_process_bound(degree: int, max_degree: int) -> int:
    """Lemma 25: a process ``v`` executes ≤ ``8·δ_v·Δ + 18·δ_v + 24`` moves
    in any execution of standalone FGA."""
    return 8 * degree * max_degree + 18 * degree + 24


def fga_standalone_move_bound(n: int, m: int, max_degree: int) -> int:
    """Corollary 11: ≤ ``16·Δ·m + 36·m + 24·n`` moves in any standalone FGA
    execution."""
    return 16 * max_degree * m + 36 * m + 24 * n


def fga_standalone_rounds_bound(n: int) -> int:
    """Corollary 12 / Theorem 10: ≤ ``5n + 4`` rounds from any configuration
    satisfying ``P5`` (in particular from ``γ_init``)."""
    return 5 * n + 4


def fga_sdr_move_bound(n: int, m: int, max_degree: int) -> int:
    """Theorem 12 (explicit constant from its proof):
    ``(n+1)·(16·m·Δ + 36·m + 27·n)`` moves for any ``FGA ∘ SDR`` execution."""
    return (n + 1) * (16 * m * max_degree + 36 * m + 27 * n)


def fga_sdr_rounds_bound(n: int) -> int:
    """Theorem 14: ``FGA ∘ SDR`` stabilizes within ``8n + 4`` rounds."""
    return 8 * n + 4


def boulinier_move_shape(n: int, diameter: int, alpha: int) -> int:
    """Reference growth shape for the baseline [11]: ``D·n³ + α·n²``
    (as analyzed in [23]); used for figure reference lines, not assertions."""
    return diameter * n**3 + alpha * n**2
