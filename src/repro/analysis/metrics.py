"""Per-run metric extraction from simulators and traces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.simulator import Simulator

__all__ = ["RunMetrics", "collect_metrics"]


@dataclass(frozen=True)
class RunMetrics:
    """Move/round accounting of one finished (or stopped) run.

    ``moves_per_rule`` uses the algorithm's rule labels; helper views split
    SDR-layer moves from input-layer moves when the labels follow the SDR
    naming convention (``rule_RB``/``rule_RF``/``rule_C``/``rule_R``).
    """

    steps: int
    moves: int
    rounds: int
    moves_per_process: tuple[int, ...]
    moves_per_rule: Mapping[str, int]

    SDR_RULES = ("rule_RB", "rule_RF", "rule_C", "rule_R")

    @property
    def max_moves_per_process(self) -> int:
        return max(self.moves_per_process) if self.moves_per_process else 0

    @property
    def sdr_moves(self) -> int:
        """Moves spent in SDR's four rules."""
        return sum(self.moves_per_rule.get(r, 0) for r in self.SDR_RULES)

    @property
    def input_moves(self) -> int:
        """Moves spent outside SDR's rules."""
        return self.moves - self.sdr_moves

    def rule_share(self, rule: str) -> float:
        """Fraction of all moves spent in one rule."""
        if self.moves == 0:
            return 0.0
        return self.moves_per_rule.get(rule, 0) / self.moves


def collect_metrics(sim: Simulator) -> RunMetrics:
    """Snapshot the accounting of a simulator into a :class:`RunMetrics`."""
    return RunMetrics(
        steps=sim.step_count,
        moves=sim.move_count,
        rounds=sim.rounds.completed,
        moves_per_process=tuple(sim.moves_per_process),
        moves_per_rule=dict(sim.moves_per_rule),
    )
