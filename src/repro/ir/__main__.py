"""``python -m repro.ir check`` — lint every registered rule set."""

import sys

from .check import main

if __name__ == "__main__":
    sys.exit(main())
