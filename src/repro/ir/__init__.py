"""`repro.ir` — one declarative rule language, compiled to every backend.

The paper presents its algorithms (SDR, unison, (f,g)-alliance) as sets
of guarded rules over locally shared variables.  This package makes that
the *authoring format*: an algorithm states its rules once, as
expression trees over its schema columns
(:mod:`~repro.ir.exprs`), and two compilers produce the executable
forms —

* :meth:`RuleSet.compile_dict` → a per-process interpreter matching the
  ``Algorithm.guard``/``execute`` dict contract
  (:mod:`~repro.ir.dictc`), used to machine-check IR definitions against
  handwritten guards;
* :meth:`RuleSet.compile_kernel` /
  :meth:`InputRuleSet.compile_input_kernel` → generated numpy programs
  over CSR columns (:mod:`~repro.ir.kernelc`), consumed unchanged by the
  kernel/fused/batched engines.

``python -m repro.ir check`` lints every registered rule set: it
compiles both backends and verifies rule-label parity, schema parity,
guard/action agreement with the native dict implementation, and mask
coverage (see :mod:`~repro.ir.check`).
"""

from .exprs import (
    Argmin,
    BinOp,
    Col,
    Const,
    Expr,
    Gather,
    Neigh,
    NProcs,
    Own,
    Param,
    ProcIndex,
    Reduce,
    UnOp,
    Where,
    absval,
    all_neighbors,
    any_neighbors,
    argmax_over_neighbors,
    argmin_over_neighbors,
    as_expr,
    col,
    const,
    count_neighbors,
    gather,
    max_over_neighbors,
    maximum,
    min_over_neighbors,
    minimum,
    neigh,
    neigh_index,
    nprocs,
    own,
    param,
    proc_index,
    sign,
    where,
)
from .rules import Assign, FastPath, InputRuleSet, Rule, RuleSet, merge_rule_sets

__all__ = [
    # expressions
    "Expr", "Const", "Col", "Param", "ProcIndex", "NProcs", "Neigh", "Own",
    "BinOp", "UnOp", "Where", "Gather", "Reduce", "Argmin", "as_expr",
    "col", "const", "param", "proc_index", "nprocs", "neigh", "own",
    "neigh_index", "where", "gather", "minimum", "maximum", "sign", "absval",
    "all_neighbors", "any_neighbors", "count_neighbors",
    "min_over_neighbors", "max_over_neighbors",
    "argmin_over_neighbors", "argmax_over_neighbors",
    # rule sets
    "Assign", "Rule", "FastPath", "RuleSet", "InputRuleSet",
    "merge_rule_sets",
]
