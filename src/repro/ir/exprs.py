"""Expression nodes of the rule IR.

An algorithm's guards and actions are built from these nodes once and
compiled twice: :mod:`repro.ir.dictc` interprets them per process against
the dict-of-dicts state contract, :mod:`repro.ir.kernelc` generates a
vectorized numpy program over typed columns.  Expressions are typed by
*space*:

* ``"scalar"`` — one value for the whole system (constants, ``NProcs``);
* ``"proc"``   — one value per process (columns, reductions, gathers);
* ``"edge"``   — one value per *(process, neighbor)* pair, produced by
  :class:`Neigh`/:class:`Own` and consumed by :class:`Reduce`.

Scalars coerce into either space; mixing ``proc`` and ``edge`` operands
in one operation is a construction-time error (wrap the process-space
side in :func:`neigh` or :func:`own` first — the classic vectorization
bug this IR exists to rule out).

Values are machine-encoded throughout: enum variables are their int8
codes, ``opt_index`` variables are int64 with ``-1`` for ⊥ (see
:class:`repro.core.kernel.schema.Var`).  Both compilers agree on python
``%``/``//`` semantics for negative operands (numpy matches python here),
which the congruence-window guards rely on.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Union

from ..core.exceptions import AlgorithmError

__all__ = [
    "SCALAR", "PROC", "EDGE",
    "Expr", "Const", "Col", "Param", "ProcIndex", "NProcs",
    "Neigh", "Own", "BinOp", "UnOp", "Where", "Gather", "Reduce",
    "as_expr", "col", "const", "param", "proc_index", "nprocs",
    "neigh", "own", "neigh_index", "where", "gather",
    "minimum", "maximum", "sign", "absval",
    "all_neighbors", "any_neighbors", "count_neighbors",
    "min_over_neighbors", "max_over_neighbors",
    "Argmin", "argmin_over_neighbors", "argmax_over_neighbors",
]

SCALAR = "scalar"
PROC = "proc"
EDGE = "edge"

ExprLike = Union["Expr", int, bool]


def as_expr(value: ExprLike) -> "Expr":
    """Coerce a python int/bool into a :class:`Const`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (bool, int)):
        return Const(value)
    raise AlgorithmError(
        f"cannot use {value!r} ({type(value).__name__}) in an IR expression"
    )


def _join(a: str, b: str) -> str:
    if a == b:
        return a
    if a == SCALAR:
        return b
    if b == SCALAR:
        return a
    raise AlgorithmError(
        "cannot mix process-space and edge-space expressions in one "
        "operation; lift the process side with neigh(...) or own(...)"
    )


class Expr:
    """Base expression.  Operators build trees; ``==`` builds a node, so
    expressions are hashed/compared by identity and have no truth value."""

    __slots__ = ("space",)

    def __init__(self, space: str):
        self.space = space

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other):
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other):
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other):
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other):
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other):
        return BinOp("*", as_expr(other), self)

    def __floordiv__(self, other):
        return BinOp("//", self, as_expr(other))

    def __rfloordiv__(self, other):
        return BinOp("//", as_expr(other), self)

    def __mod__(self, other):
        return BinOp("%", self, as_expr(other))

    def __rmod__(self, other):
        return BinOp("%", as_expr(other), self)

    def __neg__(self):
        return UnOp("-", self)

    # -- comparisons ---------------------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return BinOp("==", self, as_expr(other))

    def __ne__(self, other):  # type: ignore[override]
        return BinOp("!=", self, as_expr(other))

    def __lt__(self, other):
        return BinOp("<", self, as_expr(other))

    def __le__(self, other):
        return BinOp("<=", self, as_expr(other))

    def __gt__(self, other):
        return BinOp(">", self, as_expr(other))

    def __ge__(self, other):
        return BinOp(">=", self, as_expr(other))

    # -- boolean -------------------------------------------------------
    def __and__(self, other):
        return BinOp("&", self, as_expr(other))

    def __rand__(self, other):
        return BinOp("&", as_expr(other), self)

    def __or__(self, other):
        return BinOp("|", self, as_expr(other))

    def __ror__(self, other):
        return BinOp("|", as_expr(other), self)

    def __invert__(self):
        return UnOp("~", self)

    # ``==`` is overloaded, so identity is the only sane hash/truth.
    __hash__ = object.__hash__

    def __bool__(self):
        raise TypeError(
            "IR expressions have no truth value; use &, |, ~ instead of "
            "and/or/not, and build conditionals with where(...)"
        )


class Const(Expr):
    """A python int or bool literal (scalar space)."""

    __slots__ = ("value",)

    def __init__(self, value):
        super().__init__(SCALAR)
        if isinstance(value, bool):
            self.value = value
        elif isinstance(value, int):
            self.value = int(value)
        else:
            raise AlgorithmError(f"Const wants an int or bool, got {value!r}")

    def __repr__(self):
        return f"Const({self.value!r})"


class Col(Expr):
    """The owner's value of a schema variable (machine-encoded)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        super().__init__(PROC)
        self.name = name

    def __repr__(self):
        return f"Col({self.name!r})"


class Param(Expr):
    """A per-process compile-time constant vector (e.g. process ids,
    per-process thresholds, root flags).  Tiled batches repeat it per
    block."""

    __slots__ = ("values", "label")

    def __init__(self, values, label: str = "param"):
        super().__init__(PROC)
        self.values = tuple(values)
        self.label = label

    def __repr__(self):
        return f"Param(<{len(self.values)} values>, {self.label!r})"


class ProcIndex(Expr):
    """The process's own index ``u`` (global index in tiled layouts)."""

    __slots__ = ()

    def __init__(self):
        super().__init__(PROC)


class NProcs(Expr):
    """Total number of processes *in the running layout* (``T·n`` when
    tiled).  Use a :class:`Const` for the per-block ``n``."""

    __slots__ = ()

    def __init__(self):
        super().__init__(SCALAR)


class Neigh(Expr):
    """Lift a process-space expression to edge space: per edge slot, the
    *neighbor's* value."""

    __slots__ = ("arg",)

    def __init__(self, arg: ExprLike):
        arg = as_expr(arg)
        if arg.space == EDGE:
            raise AlgorithmError("Neigh(...) of an edge-space expression")
        super().__init__(EDGE)
        self.arg = arg


class Own(Expr):
    """Lift a process-space expression to edge space: per edge slot, the
    *owner's* value."""

    __slots__ = ("arg",)

    def __init__(self, arg: ExprLike):
        arg = as_expr(arg)
        if arg.space == EDGE:
            raise AlgorithmError("Own(...) of an edge-space expression")
        super().__init__(EDGE)
        self.arg = arg


_BIN_OPS = frozenset(
    {"+", "-", "*", "//", "%", "==", "!=", "<", "<=", ">", ">=", "&", "|",
     "min2", "max2"}
)


class BinOp(Expr):
    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Expr, b: Expr):
        if op not in _BIN_OPS:
            raise AlgorithmError(f"unknown binary op {op!r}")
        super().__init__(_join(a.space, b.space))
        self.op = op
        self.a = a
        self.b = b


_UN_OPS = frozenset({"~", "-", "sign", "abs"})


class UnOp(Expr):
    __slots__ = ("op", "a")

    def __init__(self, op: str, a: Expr):
        if op not in _UN_OPS:
            raise AlgorithmError(f"unknown unary op {op!r}")
        super().__init__(a.space)
        self.op = op
        self.a = a


class Where(Expr):
    """Elementwise conditional ``cond ? a : b`` (both branches evaluate)."""

    __slots__ = ("cond", "a", "b")

    def __init__(self, cond: ExprLike, a: ExprLike, b: ExprLike):
        cond, a, b = as_expr(cond), as_expr(a), as_expr(b)
        super().__init__(_join(_join(cond.space, a.space), b.space))
        self.cond = cond
        self.a = a
        self.b = b


class Gather(Expr):
    """``value[index]`` across processes — read another process's value
    through a pointer column (e.g. a parent pointer).  Negative indices
    (⊥ pointers) read process 0; guard the result with the pointer's
    validity."""

    __slots__ = ("index", "value")

    def __init__(self, index: ExprLike, value: ExprLike):
        index, value = as_expr(index), as_expr(value)
        if index.space == EDGE or value.space == EDGE:
            raise AlgorithmError("Gather operands must be process-space")
        super().__init__(PROC)
        self.index = index
        self.value = value


_REDUCE_KINDS = frozenset({"all", "any", "count", "min", "max"})


class Reduce(Expr):
    """Neighborhood quantifier/reduction: fold an edge-space expression
    over each process's neighbors.

    ``all``/``any``/``count`` take just the flag; ``min``/``max`` take an
    optional edge-space ``where`` filter and a required ``default`` for
    processes whose filtered neighborhood is empty.
    """

    __slots__ = ("kind", "value", "where", "default")

    def __init__(self, kind: str, value: ExprLike, where=None, default=None):
        if kind not in _REDUCE_KINDS:
            raise AlgorithmError(f"unknown reduction {kind!r}")
        value = as_expr(value)
        if value.space != EDGE:
            raise AlgorithmError(
                f"Reduce({kind!r}) wants an edge-space expression; lift "
                "with neigh(...)/own(...)"
            )
        if kind in ("all", "any", "count"):
            if where is not None or default is not None:
                raise AlgorithmError(f"Reduce({kind!r}) takes no where/default")
        else:
            if default is None:
                raise AlgorithmError(f"Reduce({kind!r}) needs a default")
            default = int(default)
            if where is not None:
                where = as_expr(where)
                if where.space != EDGE:
                    raise AlgorithmError("Reduce where-filter must be edge-space")
        super().__init__(PROC)
        self.kind = kind
        self.value = value
        self.where = where
        self.default = default


# ----------------------------------------------------------------------
# Helper constructors — the authoring vocabulary
# ----------------------------------------------------------------------
def col(name: str) -> Col:
    return Col(name)


def const(value) -> Const:
    return Const(value)


def param(values, label: str = "param") -> Param:
    return Param(values, label)


def proc_index() -> ProcIndex:
    return ProcIndex()


def nprocs() -> NProcs:
    return NProcs()


def neigh(x: ExprLike) -> Neigh:
    return Neigh(x)


def own(x: ExprLike) -> Own:
    return Own(x)


def neigh_index() -> Neigh:
    """Per edge slot: the neighbor's process index."""
    return Neigh(ProcIndex())


def where(cond: ExprLike, a: ExprLike, b: ExprLike) -> Where:
    return Where(cond, a, b)


def gather(index: ExprLike, value: ExprLike) -> Gather:
    return Gather(index, value)


def minimum(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("min2", as_expr(a), as_expr(b))


def maximum(a: ExprLike, b: ExprLike) -> BinOp:
    return BinOp("max2", as_expr(a), as_expr(b))


def sign(x: ExprLike) -> UnOp:
    return UnOp("sign", as_expr(x))


def absval(x: ExprLike) -> UnOp:
    return UnOp("abs", as_expr(x))


def all_neighbors(flag: ExprLike) -> Reduce:
    """``∀v ∈ N(u): flag(u, v)`` — vacuously true for isolated processes."""
    return Reduce("all", flag)


def any_neighbors(flag: ExprLike) -> Reduce:
    """``∃v ∈ N(u): flag(u, v)``."""
    return Reduce("any", flag)


def count_neighbors(flag: ExprLike) -> Reduce:
    """``#{v ∈ N(u) | flag(u, v)}``."""
    return Reduce("count", flag)


def min_over_neighbors(value: ExprLike, *, where=None, default) -> Reduce:
    """``min{value(u, v) | v ∈ N(u), where}`` with ``default`` when empty."""
    return Reduce("min", value, where, default)


def max_over_neighbors(value: ExprLike, *, where=None, default) -> Reduce:
    """``max{value(u, v) | v ∈ N(u), where}`` with ``default`` when empty."""
    return Reduce("max", value, where, default)


class Argmin(NamedTuple):
    """Result bundle of :func:`argmin_over_neighbors`.

    ``packed`` is the raw ``key·N + index`` minimum (``sentinel`` when no
    neighbor passes the filter) — compose with further :func:`minimum`
    before decoding if the process itself competes.  ``found`` tells
    whether any candidate existed, ``index``/``key`` decode the winner
    (``index`` is ``-1`` when not found).
    """

    packed: Expr
    found: Expr
    index: Expr
    key: Expr


def _arg_reduce(kind: str, key: ExprLike, where, sentinel: int) -> Argmin:
    key = as_expr(key)
    n = NProcs()
    packed_edge = key * n + neigh_index()
    packed = Reduce(kind, packed_edge, where, sentinel)
    found = packed != sentinel
    return Argmin(
        packed=packed,
        found=found,
        index=Where(found, packed % n, Const(-1)),
        key=packed // n,
    )


def argmin_over_neighbors(key: ExprLike, *, where=None, sentinel: int) -> Argmin:
    """Neighbor minimizing ``key``, ties broken by smallest process index.

    Packs ``key·N + index`` (``N`` = :class:`NProcs`) into one composite
    int64 and min-reduces it, the standard trick behind FGA's pointer
    election and the BFS parent choice.  ``sentinel`` must exceed every
    packed candidate; callers are responsible for the no-overflow bound
    ``max(key)·N + N ≤ sentinel``.
    """
    return _arg_reduce("min", key, where, sentinel)


def argmax_over_neighbors(key: ExprLike, *, where=None, sentinel: int) -> Argmin:
    """Neighbor maximizing ``key``; ``sentinel`` must be *below* every
    packed candidate (e.g. ``-1`` with non-negative keys).  Ties break
    toward the *largest* process index."""
    return _arg_reduce("max", key, where, sentinel)
