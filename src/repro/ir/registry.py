"""Registry of every IR-defined algorithm, for the ``repro.ir check`` lint.

Each entry is a factory returning a representative :class:`Algorithm`
instance (on a small, non-trivial sample network) whose
:meth:`~repro.core.algorithm.Algorithm.rule_set` is the IR definition
under check.  The lint (:mod:`repro.ir.check`) compiles both backends of
every entry and machine-checks them against the algorithm's native dict
implementation.
"""

from __future__ import annotations

__all__ = ["registered_algorithms"]


def registered_algorithms():
    """``(label, factory)`` pairs covering every registered rule set."""
    from ..alliance.fga import FGA
    from ..alliance.turau import TurauMIS
    from ..baselines.bfs_tree import BfsTree
    from ..baselines.leader_election import LeaderElection
    from ..baselines.mono_reset import MonoReset
    from ..core.composition import Composition
    from ..reset.sdr import SDR
    from ..topology import by_name
    from ..unison.boulinier import BoulinierUnison
    from ..unison.unison import Unison

    def net():
        # Irregular degrees exercise the CSR reductions harder than a ring.
        return by_name("random", 9, seed=11)

    return [
        ("unison", lambda: Unison(net())),
        ("boulinier", lambda: BoulinierUnison(net())),
        ("turau-mis", lambda: TurauMIS(net())),
        ("fga", lambda: FGA(net(), 1, 1)),
        ("sdr(unison)", lambda: SDR(Unison(net()))),
        ("sdr(fga)", lambda: SDR(FGA(net(), 1, 1))),
        ("mono-reset(unison)", lambda: MonoReset(Unison(net()))),
        ("bfs-tree", lambda: BfsTree(net(), root=2)),
        ("leader-election", lambda: LeaderElection(net())),
        (
            "composition(bfs-tree, leader-election)",
            lambda: (lambda network: Composition(
                [BfsTree(network, root=0), LeaderElection(network)]
            ))(net()),
        ),
    ]
