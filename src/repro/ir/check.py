"""The ``python -m repro.ir check`` lint.

For every registered algorithm (:mod:`repro.ir.registry`) the lint

* compiles the declared rule set to *both* backends;
* checks rule-label parity and variable parity with the algorithm's
  native dict contract;
* evaluates every guard and action of the compiled dict program against
  the handwritten ``guard``/``execute`` on the initial and several
  random configurations, value for value;
* evaluates the generated kernel's guard masks on the same
  configurations and checks them against the dict guards (mask
  coverage: an omitted mask key must mean an everywhere-false guard);
* for input rule sets, checks the ``icorrect``/``reset`` predicates
  (both compilations) against ``p_icorrect``/``p_reset``;
* domain soundness: every value ``algorithm.random_state`` can draw must
  encode within its schema column's declared dtype and the tiled batch
  layout (:func:`check_domains`) — the fault injector corrupts registers
  by drawing from exactly this distribution and writing the encoded
  value straight into (possibly tiled) columns, so an out-of-domain draw
  here would mean vectorized corruption could overflow a tile.

Exit status 0 when every rule set passes; 1 otherwise, with one line per
problem.  CI runs this as a build step, so an IR definition that drifts
from its dict twin fails the pipeline before any simulation runs.
"""

from __future__ import annotations

from random import Random

from .registry import registered_algorithms
from .rules import InputRuleSet

__all__ = ["check_algorithm", "check_domains", "run_check", "main"]

#: Random configurations probed per algorithm (plus the initial one).
_SEEDS = (0, 1, 2)

#: Random-state draws per process for the domain-soundness lint.
_DOMAIN_DRAWS = 8


def _configurations(algorithm):
    cfgs = [algorithm.initial_configuration()]
    cfgs += [algorithm.random_configuration(Random(s)) for s in _SEEDS]
    return cfgs


def check_algorithm(label: str, algorithm) -> list[str]:
    """All lint findings for one registered algorithm (empty = pass)."""
    problems: list[str] = []
    rule_set = algorithm.rule_set()
    if rule_set is None:
        return [f"{label}: rule_set() is None — no IR definition"]

    if rule_set.rule_labels != tuple(algorithm.rule_names()):
        problems.append(
            f"{label}: rule labels {list(rule_set.rule_labels)} != "
            f"algorithm rules {list(algorithm.rule_names())}"
        )
        return problems
    if set(rule_set.schema.names) != set(algorithm.variables()):
        problems.append(
            f"{label}: schema variables {sorted(rule_set.schema.names)} != "
            f"algorithm variables {sorted(algorithm.variables())}"
        )
        return problems

    dict_program = rule_set.compile_dict()
    try:
        import numpy  # noqa: F401

        kernel_program = rule_set.compile_kernel()
    except ModuleNotFoundError:
        kernel_program = None
    if kernel_program is None:
        problems.append(f"{label}: compile_kernel() returned None")

    is_input = isinstance(rule_set, InputRuleSet)
    processes = algorithm.network.processes()
    for c, cfg in enumerate(_configurations(algorithm)):
        masks = None
        if kernel_program is not None:
            cols = kernel_program.schema.encode(cfg)
            masks = kernel_program.guard_masks(cols)
            stray = set(masks) - set(rule_set.rule_labels)
            if stray:
                problems.append(f"{label}: masks for unknown rules {stray}")

        for rule in rule_set.rule_labels:
            mask = None if masks is None else masks.get(rule)
            for u in processes:
                want = algorithm.guard(rule, cfg, u)
                got = dict_program.guard(rule, cfg, u)
                if got != want:
                    problems.append(
                        f"{label}: dict guard {rule!r} at {u} (cfg {c}): "
                        f"IR={got} native={want}"
                    )
                    continue
                if masks is not None:
                    kernel_enabled = bool(mask[u]) if mask is not None else False
                    if kernel_enabled != want:
                        problems.append(
                            f"{label}: kernel mask {rule!r} at {u} (cfg {c}): "
                            f"IR={kernel_enabled} native={want}"
                        )
                if want:
                    got_upd = dict_program.execute(rule, cfg, u)
                    want_upd = algorithm.execute(rule, cfg, u)
                    if got_upd != want_upd:
                        problems.append(
                            f"{label}: action {rule!r} at {u} (cfg {c}): "
                            f"IR={got_upd!r} native={want_upd!r}"
                        )

        if is_input:
            for name, native in (
                ("icorrect", algorithm.p_icorrect),
                ("reset", algorithm.p_reset),
            ):
                if name not in rule_set.predicates:
                    problems.append(f"{label}: missing predicate {name!r}")
                    break
                kmask = (
                    None
                    if kernel_program is None
                    else getattr(kernel_program, f"{name}_mask")(cols)
                )
                for u in processes:
                    want = native(cfg, u)
                    if dict_program.predicate(name, cfg, u) != want:
                        problems.append(
                            f"{label}: dict predicate {name!r} at {u} (cfg {c})"
                        )
                    if kmask is not None and bool(kmask[u]) != want:
                        problems.append(
                            f"{label}: kernel predicate {name!r} at {u} (cfg {c})"
                        )
        if problems:
            break  # one configuration's findings are enough detail
    return problems


def check_domains(label: str, algorithm) -> list[str]:
    """Domain-soundness findings: ``random_state`` draws vs the schema.

    The fault subsystem (:mod:`repro.faults.schedule`) corrupts a victim
    register by drawing a fresh value from ``algorithm.random_state`` and
    writing its *encoded* form directly into the kernel columns — on the
    batched path, into a ``(T, n)``-tiled column slice addressed as
    ``t*n + u``.  That is only safe if every drawable value

    * encodes without raising (enum values inside the declared domain),
    * fits the column dtype exactly (``int8`` for enum codes, ``int64``
      for ints — a draw outside int64 would wrap silently), and
    * for ``opt_index`` variables stays in ``{None} ∪ [0, n)``: the
      tiled layout stores process *indices* plus a block offset, so a
      local index ≥ n would alias a neighbouring trial's tile.
    """
    rule_set = algorithm.rule_set()
    if rule_set is None:
        return []  # no IR definition: reported by check_algorithm already
    problems: list[str] = []
    n = algorithm.network.n
    schema = rule_set.schema
    int64_info = (-(2**63), 2**63 - 1)
    for seed in _SEEDS:
        rng = Random(seed)
        for u in algorithm.network.processes():
            for _ in range(_DOMAIN_DRAWS):
                state = algorithm.random_state(u, rng)
                for var in schema.vars:
                    if var.name not in state:
                        problems.append(
                            f"{label}: random_state({u}) omits "
                            f"variable {var.name!r}"
                        )
                        continue
                    value = state[var.name]
                    try:
                        code = var.encode_value(value)
                    except Exception as exc:
                        problems.append(
                            f"{label}: random_state({u}) drew "
                            f"{var.name}={value!r} which does not encode: "
                            f"{exc}"
                        )
                        continue
                    if var.kind == "bool" and not isinstance(value, bool):
                        problems.append(
                            f"{label}: random_state({u}) drew non-bool "
                            f"{var.name}={value!r}"
                        )
                    elif var.kind == "enum" and not (
                        0 <= code < len(var.values)
                    ):
                        problems.append(
                            f"{label}: random_state({u}) drew "
                            f"{var.name}={value!r} outside the enum domain"
                        )
                    elif var.kind == "opt_index" and not (-1 <= code < n):
                        problems.append(
                            f"{label}: random_state({u}) drew "
                            f"{var.name}={value!r} — opt_index code {code} "
                            f"outside [-1, {n}) breaks the tiled layout"
                        )
                    elif var.kind == "int" and not (
                        int64_info[0] <= code <= int64_info[1]
                    ):
                        problems.append(
                            f"{label}: random_state({u}) drew "
                            f"{var.name}={value!r} outside int64"
                        )
                if problems:
                    return problems  # one draw's findings are enough
    return problems


def run_check(out=print) -> int:
    """Lint every registered rule set; return a process exit status."""
    failures = 0
    for label, factory in registered_algorithms():
        algorithm = factory()
        problems = check_algorithm(label, algorithm)
        problems += check_domains(label, algorithm)
        if problems:
            failures += 1
            for problem in problems:
                out(f"FAIL {problem}")
        else:
            rule_set = algorithm.rule_set()
            out(f"ok   {label} ({len(rule_set.rule_labels)} rules)")
    if failures:
        out(f"{failures} rule set(s) failed the IR lint")
        return 1
    out("all registered rule sets compile and agree with their dict twins")
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.ir",
        description="Lint the declarative rule sets (compile both backends "
        "and machine-check them against the native dict implementations).",
    )
    parser.add_argument("command", choices=["check"], help="subcommand")
    parser.parse_args(argv)
    return run_check()
