"""The ``python -m repro.ir check`` lint.

For every registered algorithm (:mod:`repro.ir.registry`) the lint

* compiles the declared rule set to *both* backends;
* checks rule-label parity and variable parity with the algorithm's
  native dict contract;
* evaluates every guard and action of the compiled dict program against
  the handwritten ``guard``/``execute`` on the initial and several
  random configurations, value for value;
* evaluates the generated kernel's guard masks on the same
  configurations and checks them against the dict guards (mask
  coverage: an omitted mask key must mean an everywhere-false guard);
* for input rule sets, checks the ``icorrect``/``reset`` predicates
  (both compilations) against ``p_icorrect``/``p_reset``.

Exit status 0 when every rule set passes; 1 otherwise, with one line per
problem.  CI runs this as a build step, so an IR definition that drifts
from its dict twin fails the pipeline before any simulation runs.
"""

from __future__ import annotations

from random import Random

from .registry import registered_algorithms
from .rules import InputRuleSet

__all__ = ["check_algorithm", "run_check", "main"]

#: Random configurations probed per algorithm (plus the initial one).
_SEEDS = (0, 1, 2)


def _configurations(algorithm):
    cfgs = [algorithm.initial_configuration()]
    cfgs += [algorithm.random_configuration(Random(s)) for s in _SEEDS]
    return cfgs


def check_algorithm(label: str, algorithm) -> list[str]:
    """All lint findings for one registered algorithm (empty = pass)."""
    problems: list[str] = []
    rule_set = algorithm.rule_set()
    if rule_set is None:
        return [f"{label}: rule_set() is None — no IR definition"]

    if rule_set.rule_labels != tuple(algorithm.rule_names()):
        problems.append(
            f"{label}: rule labels {list(rule_set.rule_labels)} != "
            f"algorithm rules {list(algorithm.rule_names())}"
        )
        return problems
    if set(rule_set.schema.names) != set(algorithm.variables()):
        problems.append(
            f"{label}: schema variables {sorted(rule_set.schema.names)} != "
            f"algorithm variables {sorted(algorithm.variables())}"
        )
        return problems

    dict_program = rule_set.compile_dict()
    try:
        import numpy  # noqa: F401

        kernel_program = rule_set.compile_kernel()
    except ModuleNotFoundError:
        kernel_program = None
    if kernel_program is None:
        problems.append(f"{label}: compile_kernel() returned None")

    is_input = isinstance(rule_set, InputRuleSet)
    processes = algorithm.network.processes()
    for c, cfg in enumerate(_configurations(algorithm)):
        masks = None
        if kernel_program is not None:
            cols = kernel_program.schema.encode(cfg)
            masks = kernel_program.guard_masks(cols)
            stray = set(masks) - set(rule_set.rule_labels)
            if stray:
                problems.append(f"{label}: masks for unknown rules {stray}")

        for rule in rule_set.rule_labels:
            mask = None if masks is None else masks.get(rule)
            for u in processes:
                want = algorithm.guard(rule, cfg, u)
                got = dict_program.guard(rule, cfg, u)
                if got != want:
                    problems.append(
                        f"{label}: dict guard {rule!r} at {u} (cfg {c}): "
                        f"IR={got} native={want}"
                    )
                    continue
                if masks is not None:
                    kernel_enabled = bool(mask[u]) if mask is not None else False
                    if kernel_enabled != want:
                        problems.append(
                            f"{label}: kernel mask {rule!r} at {u} (cfg {c}): "
                            f"IR={kernel_enabled} native={want}"
                        )
                if want:
                    got_upd = dict_program.execute(rule, cfg, u)
                    want_upd = algorithm.execute(rule, cfg, u)
                    if got_upd != want_upd:
                        problems.append(
                            f"{label}: action {rule!r} at {u} (cfg {c}): "
                            f"IR={got_upd!r} native={want_upd!r}"
                        )

        if is_input:
            for name, native in (
                ("icorrect", algorithm.p_icorrect),
                ("reset", algorithm.p_reset),
            ):
                if name not in rule_set.predicates:
                    problems.append(f"{label}: missing predicate {name!r}")
                    break
                kmask = (
                    None
                    if kernel_program is None
                    else getattr(kernel_program, f"{name}_mask")(cols)
                )
                for u in processes:
                    want = native(cfg, u)
                    if dict_program.predicate(name, cfg, u) != want:
                        problems.append(
                            f"{label}: dict predicate {name!r} at {u} (cfg {c})"
                        )
                    if kmask is not None and bool(kmask[u]) != want:
                        problems.append(
                            f"{label}: kernel predicate {name!r} at {u} (cfg {c})"
                        )
        if problems:
            break  # one configuration's findings are enough detail
    return problems


def run_check(out=print) -> int:
    """Lint every registered rule set; return a process exit status."""
    failures = 0
    for label, factory in registered_algorithms():
        algorithm = factory()
        problems = check_algorithm(label, algorithm)
        if problems:
            failures += 1
            for problem in problems:
                out(f"FAIL {problem}")
        else:
            rule_set = algorithm.rule_set()
            out(f"ok   {label} ({len(rule_set.rule_labels)} rules)")
    if failures:
        out(f"{failures} rule set(s) failed the IR lint")
        return 1
    out("all registered rule sets compile and agree with their dict twins")
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.ir",
        description="Lint the declarative rule sets (compile both backends "
        "and machine-check them against the native dict implementations).",
    )
    parser.add_argument("command", choices=["check"], help="subcommand")
    parser.parse_args(argv)
    return run_check()
