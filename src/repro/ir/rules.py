"""Rule sets: the declarative unit both compilers consume.

A :class:`RuleSet` bundles an algorithm's schema, guarded rules, named
predicates (legitimacy/normality tests the probes read as ``<name>_mask``)
and an optional fast path.  :meth:`RuleSet.compile_dict` interprets it
against the per-process dict contract, :meth:`RuleSet.compile_kernel`
generates a vectorized :class:`~repro.core.kernel.programs.KernelProgram`.

:class:`InputRuleSet` extends it with the SDR input-composition contract
(Devismes & Johnen's ``I ∘ SDR``): an ``icorrect`` predicate, a ``reset``
completion predicate, and the reset action, with guards that the host
gates behind its cleanliness predicate (``clean_gated``).
:func:`merge_rule_sets` concatenates independent rule sets into one
(namespaced) set — the IR form of :class:`repro.core.composition.Composition`.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from ..core.exceptions import AlgorithmError
from .exprs import Expr, as_expr

__all__ = ["Assign", "Rule", "FastPath", "RuleSet", "InputRuleSet",
           "merge_rule_sets"]


class Assign:
    """One action effect: ``var := value`` (machine-encoded), optionally
    applied only where a per-process condition holds."""

    __slots__ = ("var", "value", "where")

    def __init__(self, var: str, value, where=None):
        self.var = var
        self.value = as_expr(value)
        self.where = None if where is None else as_expr(where)
        for part, expr in (("value", self.value), ("where", self.where)):
            if expr is not None and expr.space == "edge":
                raise AlgorithmError(
                    f"Assign({var!r}) {part} must be process- or scalar-space"
                )

    def __repr__(self):
        return f"Assign({self.var!r})"


class Rule:
    """A guarded rule: enabled where ``guard`` holds, moving applies every
    :class:`Assign` in ``action``."""

    __slots__ = ("label", "guard", "action", "clean_gated")

    def __init__(self, label: str, guard, action: Sequence[Assign], *,
                 clean_gated: bool = False):
        self.label = label
        self.guard = as_expr(guard)
        if self.guard.space == "edge":
            raise AlgorithmError(f"rule {label!r} guard must be process-space")
        if isinstance(action, Assign):
            action = (action,)
        self.action = tuple(action)
        for a in self.action:
            if not isinstance(a, Assign):
                raise AlgorithmError(
                    f"rule {label!r} action must be Assign instances"
                )
        #: Input-composition hook: the host ANDs its cleanliness predicate
        #: onto this guard at run time.  Ignored when the rule set runs
        #: standalone (the trivial host is always clean).
        self.clean_gated = clean_gated

    def __repr__(self):
        return f"Rule({self.label!r})"


class FastPath:
    """A cheap whole-system trigger with simplified guards.

    When ``trigger`` holds for *every* process (e.g. SDR: nobody is
    resetting), the kernel evaluates ``guards`` — typically a fraction of
    the general masks — and omits the rest (all-false contract).  Purely
    an optimization: the simplified guards must equal the general ones
    whenever the trigger holds system-wide.
    """

    __slots__ = ("trigger", "guards")

    def __init__(self, trigger, guards: Mapping[str, Expr]):
        self.trigger = as_expr(trigger)
        if self.trigger.space == "edge":
            raise AlgorithmError("fast-path trigger must be process-space")
        self.guards = {label: as_expr(g) for label, g in guards.items()}


class RuleSet:
    """One algorithm, declaratively: schema + rules + predicates."""

    def __init__(self, name: str, network, schema, rules: Sequence[Rule], *,
                 predicates: Optional[Mapping[str, Expr]] = None,
                 fast_path: Optional[FastPath] = None,
                 tile_check: Optional[Callable[[int], bool]] = None):
        self.name = name
        self.network = network
        self.schema = schema
        self.rules = tuple(rules)
        self.rule_labels = tuple(r.label for r in self.rules)
        if len(set(self.rule_labels)) != len(self.rule_labels):
            raise AlgorithmError(f"{name}: duplicate rule labels")
        declared = set(schema.names)
        for rule in self.rules:
            for a in rule.action:
                if a.var not in declared:
                    raise AlgorithmError(
                        f"{name}: rule {rule.label!r} assigns undeclared "
                        f"variable {a.var!r}"
                    )
        self.predicates = dict(predicates or {})
        self.fast_path = fast_path
        #: Optional ``copies -> bool`` refusing tiled layouts (composite
        #: keys that would overflow int64 at T·n processes).
        self.tile_check = tile_check
        self._kernel_code = None

    # ------------------------------------------------------------------
    def compile_dict(self):
        """Interpret this rule set under the dict contract
        (:class:`repro.ir.dictc.DictProgram`)."""
        from .dictc import DictProgram

        return DictProgram(self)

    def compile_kernel(self):
        """Generate the vectorized program, or ``None`` without numpy."""
        try:
            from .kernelc import IRKernelProgram
        except ModuleNotFoundError as exc:  # pragma: no cover - no-numpy envs
            if exc.name and exc.name.split(".")[0] == "numpy":
                return None
            raise
        return IRKernelProgram(self)

    def kernel_code(self):
        """The generated (and cached) kernel code object — shared by every
        program instance of this rule set, tiled or not."""
        if self._kernel_code is None:
            from .kernelc import compile_rule_set

            self._kernel_code = compile_rule_set(self)
        return self._kernel_code

    def __repr__(self):
        return f"RuleSet({self.name!r}, rules={list(self.rule_labels)})"


class InputRuleSet(RuleSet):
    """A rule set implementing the SDR input contract.

    ``icorrect`` and ``reset`` become the ``icorrect``/``reset``
    predicates (servable as masks), ``reset_action`` is the effect of the
    host's reset move on the input's variables.  Rules marked
    ``clean_gated`` are ANDed with the host's cleanliness mask when run
    under a host; standalone (trivial-host) runs leave them ungated.
    """

    def __init__(self, name: str, network, schema, rules, *,
                 icorrect, reset, reset_action: Sequence[Assign],
                 predicates=None, fast_path=None, tile_check=None):
        predicates = dict(predicates or {})
        predicates.setdefault("icorrect", as_expr(icorrect))
        predicates.setdefault("reset", as_expr(reset))
        super().__init__(name, network, schema, rules, predicates=predicates,
                         fast_path=fast_path, tile_check=tile_check)
        self.icorrect = predicates["icorrect"]
        self.reset = predicates["reset"]
        if isinstance(reset_action, Assign):
            reset_action = (reset_action,)
        self.reset_action = tuple(reset_action)

    def compile_input_kernel(self):
        """Generate an :class:`~repro.core.kernel.programs.InputKernelProgram`,
        or ``None`` without numpy."""
        try:
            from .kernelc import IRInputKernelProgram
        except ModuleNotFoundError as exc:  # pragma: no cover - no-numpy envs
            if exc.name and exc.name.split(".")[0] == "numpy":
                return None
            raise
        return IRInputKernelProgram(self)


def merge_rule_sets(name: str, network, parts) -> RuleSet:
    """Concatenate independent rule sets into one (collateral composition).

    ``parts`` is a sequence of ``(prefix, rule_set)``; rule labels become
    ``"{prefix}:{label}"``, schemas concatenate in part order (variables
    must be disjoint — :class:`~repro.core.kernel.schema.Schema` checks).
    Per-part predicates, fast paths and clean gating do not survive the
    merge: each component runs with standalone semantics, which matches
    :class:`repro.core.composition.Composition`'s dict behavior.
    """
    from ..core.kernel.schema import Schema

    parts = list(parts)
    schema = Schema(*[v for _, rs in parts for v in rs.schema.vars])
    rules = [
        Rule(f"{prefix}:{rule.label}", rule.guard, rule.action)
        for prefix, rs in parts
        for rule in rs.rules
    ]
    checks = [rs.tile_check for _, rs in parts if rs.tile_check is not None]
    tile_check = None
    if checks:
        def tile_check(copies, _checks=tuple(checks)):
            return all(check(copies) for check in _checks)
    return RuleSet(name, network, schema, rules, tile_check=tile_check)
