"""Dict-contract compiler: interpret a :class:`~repro.ir.rules.RuleSet`
per process against plain state dicts.

:class:`DictProgram` exposes exactly the ``Algorithm`` rule surface —
``guard(rule, cfg, u)`` and ``execute(rule, cfg, u)`` — so an IR
definition can be checked value-for-value against a handwritten
``Algorithm`` (the ``python -m repro.ir check`` lint and the equivalence
property suite do exactly that).

Evaluation is memoized per call: process-space nodes by ``(node, u)``,
edge-space nodes by ``(node, u, v)``, so shared subexpressions (the point
of building them once) evaluate once per process, mirroring the kernel
compiler's common-subexpression reuse.  Boolean connectives evaluate on
python bools (``and``/``or``/``not``), arithmetic on python ints —
``%``/``//`` agree with numpy's int64 semantics including negative
operands.
"""

from __future__ import annotations

from ..core.exceptions import AlgorithmError
from . import exprs as E

__all__ = ["DictProgram"]

_BIN = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "&": lambda a, b: a and b,
    "|": lambda a, b: a or b,
    "min2": min,
    "max2": max,
}

_UN = {
    "~": lambda a: not a,
    "-": lambda a: -a,
    "sign": lambda a: (a > 0) - (a < 0),
    "abs": abs,
}


class DictProgram:
    """A :class:`RuleSet` interpreted under the dict state contract."""

    def __init__(self, rule_set):
        self.rule_set = rule_set
        self.network = rule_set.network
        self.rules = rule_set.rule_labels
        self._by_label = {rule.label: rule for rule in rule_set.rules}
        self._vars = {v.name: v for v in rule_set.schema.vars}

    # ------------------------------------------------------------------
    def _rule(self, label: str):
        try:
            return self._by_label[label]
        except KeyError:
            raise AlgorithmError(
                f"{self.rule_set.name}: unknown rule {label!r}"
            ) from None

    def guard(self, rule: str, cfg, u: int) -> bool:
        """``Algorithm.guard`` semantics for one rule/process."""
        return bool(_Eval(self, cfg).proc(self._rule(rule).guard, u))

    def execute(self, rule: str, cfg, u: int) -> dict:
        """``Algorithm.execute`` semantics: the update dict for ``u``."""
        ev = _Eval(self, cfg)
        updates = {}
        for assign in self._rule(rule).action:
            if assign.where is not None and not ev.proc(assign.where, u):
                continue
            value = ev.proc(assign.value, u)
            updates[assign.var] = self._vars[assign.var].decode_value(value)
        return updates

    def predicate(self, name: str, cfg, u: int) -> bool:
        """Evaluate a declared predicate (``normal``, ``icorrect``, …)."""
        try:
            expr = self.rule_set.predicates[name]
        except KeyError:
            raise AlgorithmError(
                f"{self.rule_set.name}: no predicate {name!r}"
            ) from None
        return bool(_Eval(self, cfg).proc(expr, u))


class _Eval:
    """One evaluation context (one configuration snapshot)."""

    __slots__ = ("network", "_vars", "cfg", "_pmemo", "_ememo")

    def __init__(self, program: DictProgram, cfg):
        self.network = program.network
        self._vars = program._vars
        self.cfg = cfg
        self._pmemo = {}
        self._ememo = {}

    def _read(self, name: str, w: int):
        return self._vars[name].encode_value(self.cfg[w][name])

    # ------------------------------------------------------------------
    def proc(self, node, w: int):
        key = (id(node), w)
        memo = self._pmemo
        if key in memo:
            return memo[key]
        value = self._proc(node, w)
        memo[key] = value
        return value

    def _proc(self, node, w: int):
        if isinstance(node, E.Const):
            return node.value
        if isinstance(node, E.Col):
            return self._read(node.name, w)
        if isinstance(node, E.Param):
            return node.values[w]
        if isinstance(node, E.ProcIndex):
            return w
        if isinstance(node, E.NProcs):
            return self.network.n
        if isinstance(node, E.BinOp):
            return _BIN[node.op](self.proc(node.a, w), self.proc(node.b, w))
        if isinstance(node, E.UnOp):
            return _UN[node.op](self.proc(node.a, w))
        if isinstance(node, E.Where):
            branch = node.a if self.proc(node.cond, w) else node.b
            return self.proc(branch, w)
        if isinstance(node, E.Gather):
            index = self.proc(node.index, w)
            return self.proc(node.value, max(index, 0))
        if isinstance(node, E.Reduce):
            return self._reduce(node, w)
        raise AlgorithmError(f"cannot evaluate {node!r} in process space")

    def _reduce(self, node, w: int):
        neighbors = self.network.neighbors(w)
        kind = node.kind
        if kind == "all":
            return all(self.edge(node.value, w, v) for v in neighbors)
        if kind == "any":
            return any(self.edge(node.value, w, v) for v in neighbors)
        if kind == "count":
            return sum(1 for v in neighbors if self.edge(node.value, w, v))
        candidates = [
            self.edge(node.value, w, v)
            for v in neighbors
            if node.where is None or self.edge(node.where, w, v)
        ]
        fold = min if kind == "min" else max
        return fold(candidates, default=node.default)

    # ------------------------------------------------------------------
    def edge(self, node, u: int, v: int):
        key = (id(node), u, v)
        memo = self._ememo
        if key in memo:
            return memo[key]
        value = self._edge(node, u, v)
        memo[key] = value
        return value

    def _edge(self, node, u: int, v: int):
        if isinstance(node, E.Neigh):
            return self.proc(node.arg, v)
        if isinstance(node, E.Own):
            return self.proc(node.arg, u)
        if isinstance(node, E.Const):
            return node.value
        if isinstance(node, E.NProcs):
            return self.network.n
        if isinstance(node, E.BinOp):
            return _BIN[node.op](self.edge(node.a, u, v), self.edge(node.b, u, v))
        if isinstance(node, E.UnOp):
            return _UN[node.op](self.edge(node.a, u, v))
        if isinstance(node, E.Where):
            branch = node.a if self.edge(node.cond, u, v) else node.b
            return self.edge(branch, u, v)
        raise AlgorithmError(f"cannot evaluate {node!r} in edge space")
