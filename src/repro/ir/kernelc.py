"""Kernel compiler: generate vectorized numpy programs from a rule set.

This is a source generator, not a tree-walking interpreter: each rule
set compiles once into straight-line numpy code (one ``guard_masks``
function, one ``apply`` function per rule, one function per declared
predicate), which is then ``exec``'d and cached.  Per-step cost is
therefore identical in shape to the handwritten kernel programs this
replaces — a fixed sequence of array ops with shared temporaries — and
the generated source is kept on the code object for inspection
(``rule_set.kernel_code().source``).

Lowering rules:

* process-space expressions become full-length column vectors; inside
  actions they are evaluated in *idx space* (only at the selected
  processes), except neighborhood reductions and gathers, which need the
  full columns and are indexed down afterwards — exactly the handwritten
  idiom;
* ``Neigh``/``Own`` become gathers through the CSR ``indices`` /
  ``edge_src`` arrays, ``Reduce`` becomes the matching segmented
  reduction (:class:`~repro.core.kernel.csr.CSRAdjacency`);
* common subexpressions are shared by node identity — build an
  expression once, reference it from every guard, and the generated
  function computes it once;
* a :class:`~repro.ir.rules.FastPath` compiles to a cheap whole-system
  test guarding a reduced mask dict (omitted masks are all-false by the
  :class:`~repro.core.kernel.programs.KernelProgram` contract).
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import AlgorithmError
from ..core.kernel.csr import CSRAdjacency
from ..core.kernel.programs import InputKernelProgram, KernelProgram
from . import exprs as E

__all__ = ["compile_rule_set", "IRKernelProgram", "IRInputKernelProgram"]


_BIN_FMT = {
    "+": "({} + {})",
    "-": "({} - {})",
    "*": "({} * {})",
    "//": "({} // {})",
    "%": "({} % {})",
    "==": "({} == {})",
    "!=": "({} != {})",
    "<": "({} < {})",
    "<=": "({} <= {})",
    ">": "({} > {})",
    ">=": "({} >= {})",
    "&": "({} & {})",
    "|": "({} | {})",
    "min2": "np.minimum({}, {})",
    "max2": "np.maximum({}, {})",
}

_UN_FMT = {
    "~": "(~{})",
    "-": "(-{})",
    "sign": "np.sign({})",
    "abs": "np.abs({})",
}

#: Prologue names, in emission order, with their definitions.
_PROLOGUE = (
    ("_CSR", "C.csr"),
    ("_N", "_CSR.n"),
    ("_IX", "_CSR.indices"),
    ("_SRC", "_CSR.edge_src"),
    ("_AR", "C.arange"),
    ("_ET", "C.edge_true"),
)
_NEEDS_CSR = frozenset({"_N", "_IX", "_SRC"})


class _Fn:
    """One generated function: lines, prologue needs, and CSE memos."""

    def __init__(self, compiler: "_Compiler", name: str, args: tuple,
                 colsrc: str):
        self.compiler = compiler
        self.name = name
        self.args = args
        self.colsrc = colsrc
        self.lines: list[tuple[int, str]] = []
        self.indent = 0
        self._pro: set[str] = set()
        self._fmemo: dict[int, str] = {}
        self._lmemo: dict[int, str] = {}
        self._saved = None

    # -- emission helpers ----------------------------------------------
    def use(self, name: str) -> str:
        self._pro.add(name)
        return name

    def line(self, src: str) -> None:
        self.lines.append((self.indent, src))

    def temp(self, src: str) -> str:
        name = self.compiler.next_temp()
        self.line(f"{name} = {src}")
        return name

    def begin_block(self) -> None:
        """Enter the fast-path ``if`` body: temps emitted inside are
        forgotten on exit (they don't exist on the general path)."""
        self._saved = (dict(self._fmemo), dict(self._lmemo))
        self.indent += 1

    def end_block(self) -> None:
        self._fmemo, self._lmemo = self._saved
        self._saved = None
        self.indent -= 1

    # -- full (column-vector) lowering ---------------------------------
    def full(self, node: E.Expr) -> str:
        key = id(node)
        got = self._fmemo.get(key)
        if got is None:
            got = self._full(node)
            self._fmemo[key] = got
        return got

    def _full(self, node: E.Expr) -> str:
        if isinstance(node, E.Const):
            return repr(node.value)
        if isinstance(node, E.NProcs):
            return self.use("_N")
        if isinstance(node, E.ProcIndex):
            return self.use("_AR")
        if isinstance(node, E.Col):
            return f"{self.colsrc}[{node.name!r}]"
        if isinstance(node, E.Param):
            return f"C._params[{self.compiler.param_slot(node)!r}]"
        if isinstance(node, E.Neigh):
            if isinstance(node.arg, E.ProcIndex):
                return self.use("_IX")
            if isinstance(node.arg, E.Const):
                return repr(node.arg.value)  # scalars broadcast per edge
            inner = self.full(node.arg)
            return self.temp(f"{inner}[{self.use('_IX')}]")
        if isinstance(node, E.Own):
            if isinstance(node.arg, E.ProcIndex):
                return self.use("_SRC")
            if isinstance(node.arg, E.Const):
                return repr(node.arg.value)
            inner = self.full(node.arg)
            return self.temp(f"{inner}[{self.use('_SRC')}]")
        if isinstance(node, E.BinOp):
            a, b = self.full(node.a), self.full(node.b)
            return self.temp(_BIN_FMT[node.op].format(a, b))
        if isinstance(node, E.UnOp):
            return self.temp(_UN_FMT[node.op].format(self.full(node.a)))
        if isinstance(node, E.Where):
            c, a, b = self.full(node.cond), self.full(node.a), self.full(node.b)
            return self.temp(f"np.where({c}, {a}, {b})")
        if isinstance(node, E.Gather):
            value, index = self.full(node.value), self.full(node.index)
            return self.temp(f"{value}[np.maximum({index}, 0)]")
        if isinstance(node, E.Reduce):
            csr = self.use("_CSR")
            value = self.full(node.value)
            if node.kind in ("all", "any", "count"):
                return self.temp(f"{csr}.{node.kind}_neigh({value})")
            mask = (self.full(node.where) if node.where is not None
                    else self.use("_ET"))
            fn = "min_neigh" if node.kind == "min" else "max_neigh"
            return self.temp(f"{csr}.{fn}({value}, {mask}, {node.default})")
        raise AlgorithmError(f"cannot lower {node!r} to a column vector")

    # -- local (idx-space) lowering ------------------------------------
    def local(self, node: E.Expr) -> str:
        key = id(node)
        got = self._lmemo.get(key)
        if got is None:
            got = self._local(node)
            self._lmemo[key] = got
        return got

    def _local(self, node: E.Expr) -> str:
        if isinstance(node, E.Const):
            return repr(node.value)
        if isinstance(node, E.NProcs):
            return self.use("_N")
        if isinstance(node, E.ProcIndex):
            return "idx"
        if isinstance(node, E.Col):
            return self.temp(f"{self.colsrc}[{node.name!r}][idx]")
        if isinstance(node, E.Param):
            slot = self.compiler.param_slot(node)
            return self.temp(f"C._params[{slot!r}][idx]")
        if isinstance(node, E.BinOp):
            a, b = self.local(node.a), self.local(node.b)
            return self.temp(_BIN_FMT[node.op].format(a, b))
        if isinstance(node, E.UnOp):
            return self.temp(_UN_FMT[node.op].format(self.local(node.a)))
        if isinstance(node, E.Where):
            c = self.local(node.cond)
            a, b = self.local(node.a), self.local(node.b)
            return self.temp(f"np.where({c}, {a}, {b})")
        if isinstance(node, E.Gather):
            # The pointer is only needed at idx, but the gathered column
            # must be full-length (pointers reach any process).
            value = self.full(node.value)
            index = self.local(node.index)
            return self.temp(f"{value}[np.maximum({index}, 0)]")
        if isinstance(node, E.Reduce):
            return self.temp(f"{self.full(node)}[idx]")
        raise AlgorithmError(f"cannot lower {node!r} at selected processes")

    # -- statements ----------------------------------------------------
    def emit_assign(self, assign) -> None:
        target = f"write[{assign.var!r}]"
        if assign.where is None:
            self.line(f"{target}[idx] = {self.local(assign.value)}")
            return
        if assign.where.space == E.SCALAR:
            raise AlgorithmError(
                f"Assign({assign.var!r}): condition must be per-process"
            )
        cond = self.local(assign.where)
        sub = self.temp(f"idx[{cond}]")
        if assign.value.space == E.SCALAR:
            self.line(f"{target}[{sub}] = {self.local(assign.value)}")
        else:
            self.line(f"{target}[{sub}] = {self.local(assign.value)}[{cond}]")

    def emit_mask_return(self, mask_srcs: dict) -> None:
        body = ", ".join(f"{label!r}: {src}" for label, src in mask_srcs.items())
        self.line("return {" + body + "}")

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        needs = set(self._pro)
        if needs & _NEEDS_CSR:
            needs.add("_CSR")
        out = [f"def {self.name}({', '.join(self.args)}):"]
        for name, definition in _PROLOGUE:
            if name in needs:
                out.append(f"    {name} = {definition}")
        for indent, src in self.lines:
            out.append("    " * (indent + 1) + src)
        return "\n".join(out)


class _Compiler:
    def __init__(self, rule_set):
        self.rule_set = rule_set
        self.fns: list[_Fn] = []
        self._temp = 0
        self._param_slots: dict[int, str] = {}
        self.params: list[tuple[str, np.ndarray]] = []

    def next_temp(self) -> str:
        name = f"_t{self._temp}"
        self._temp += 1
        return name

    def param_slot(self, node: E.Param) -> str:
        slot = self._param_slots.get(id(node))
        if slot is None:
            slot = f"p{len(self.params)}"
            self._param_slots[id(node)] = slot
            arr = np.asarray(node.values)
            if arr.dtype != np.bool_:
                arr = arr.astype(np.int64, copy=False)
            arr.setflags(write=False)
            self.params.append((slot, arr))
        return slot


def _trigger_test(fn: _Fn, trigger: E.Expr) -> str:
    """Whole-system fast-path test.  ``Col == 0`` specializes to the
    allocation-free ``not col.any()``; anything else materializes the
    per-process trigger and ``.all()``s it."""
    if (
        isinstance(trigger, E.BinOp)
        and trigger.op == "=="
        and isinstance(trigger.a, E.Col)
        and isinstance(trigger.b, E.Const)
        and trigger.b.value == 0
    ):
        return f"not {fn.colsrc}[{trigger.a.name!r}].any()"
    return f"bool({fn.full(trigger)}.all())"


class _KernelCode:
    """The exec'd output of :func:`compile_rule_set`, shared by every
    program instance (base and tiled) of one rule set."""

    __slots__ = (
        "guard_fn", "apply_fns", "pred_fns", "reset_fn", "params",
        "clean_gated", "source",
    )

    def __init__(self, guard_fn, apply_fns, pred_fns, reset_fn, params,
                 clean_gated, source):
        self.guard_fn = guard_fn
        self.apply_fns = apply_fns
        self.pred_fns = pred_fns
        self.reset_fn = reset_fn
        self.params = params
        self.clean_gated = clean_gated
        self.source = source


#: source → exec'd namespace.  Generation is deterministic, parameters
#: live outside the source (on the program), so identical rule structure
#: compiles exactly once per process lifetime.
_NS_CACHE: dict[str, dict] = {}


def _exec_cached(source: str, name: str) -> dict:
    ns = _NS_CACHE.get(source)
    if ns is None:
        ns = {"np": np}
        exec(compile(source, f"<repro.ir:{name}>", "exec"), ns)
        _NS_CACHE[source] = ns
    return ns


def compile_rule_set(rule_set) -> _KernelCode:
    """Generate and exec the numpy functions for one rule set."""
    comp = _Compiler(rule_set)

    guard = _Fn(comp, "guard_masks", ("cols", "C"), "cols")
    fast = rule_set.fast_path
    if fast is not None:
        guard.line(f"if {_trigger_test(guard, fast.trigger)}:")
        guard.begin_block()
        guard.emit_mask_return(
            {label: guard.full(g) for label, g in fast.guards.items()}
        )
        guard.end_block()
    guard.emit_mask_return(
        {rule.label: guard.full(rule.guard) for rule in rule_set.rules}
    )
    comp.fns.append(guard)

    pred_names = {}
    for i, (name, expr) in enumerate(rule_set.predicates.items()):
        fn = _Fn(comp, f"pred_{i}", ("cols", "C"), "cols")
        fn.line(f"return {fn.full(expr)}")
        comp.fns.append(fn)
        pred_names[name] = fn.name

    apply_names = {}
    for i, rule in enumerate(rule_set.rules):
        fn = _Fn(comp, f"apply_{i}", ("idx", "read", "write", "C"), "read")
        for assign in rule.action:
            fn.emit_assign(assign)
        comp.fns.append(fn)
        apply_names[rule.label] = fn.name

    reset_name = None
    reset_action = getattr(rule_set, "reset_action", ())
    if reset_action:
        fn = _Fn(comp, "apply_reset", ("idx", "read", "write", "C"), "read")
        for assign in reset_action:
            fn.emit_assign(assign)
        comp.fns.append(fn)
        reset_name = fn.name

    source = "\n\n".join(fn.render() for fn in comp.fns)
    ns = _exec_cached(source, rule_set.name)
    return _KernelCode(
        guard_fn=ns["guard_masks"],
        apply_fns={label: ns[fname] for label, fname in apply_names.items()},
        pred_fns={name: ns[fname] for name, fname in pred_names.items()},
        reset_fn=ns[reset_name] if reset_name else None,
        params=tuple(comp.params),
        clean_gated=tuple(r.label for r in rule_set.rules if r.clean_gated),
        source=source,
    )


class IRKernelProgram(KernelProgram):
    """A :class:`~repro.core.kernel.programs.KernelProgram` generated from
    a rule set.  Declared predicates are served as ``<name>_mask``
    methods (``normal_mask``, ``legitimate_mask``, …) for the probes."""

    #: Marks programs produced by the IR compilers — the simulator's
    #: legacy-authoring deprecation check keys on this.
    ir_generated = True

    def __init__(self, rule_set):
        self._init_from(
            rule_set,
            rule_set.kernel_code(),
            CSRAdjacency(rule_set.network),
            None,
            1,
        )

    def _init_from(self, rule_set, code, csr, params, copies) -> None:
        self.rule_set = rule_set
        self._code = code
        self.csr = csr
        self.schema = rule_set.schema
        self.rules = rule_set.rule_labels
        if params is None:
            params = dict(code.params)
        self._params = params
        self._copies = copies
        self._arange = None
        self._edge_true = None

    # -- generated-code services ---------------------------------------
    @property
    def arange(self) -> np.ndarray:
        if self._arange is None:
            self._arange = np.arange(self.csr.n, dtype=np.int64)
        return self._arange

    @property
    def edge_true(self) -> np.ndarray:
        if self._edge_true is None:
            self._edge_true = np.ones(self.csr.indices.shape[0], dtype=np.bool_)
        return self._edge_true

    # -- KernelProgram contract ----------------------------------------
    def guard_masks(self, cols):
        return self._code.guard_fn(cols, self)

    def apply(self, rule, idx, read, write):
        try:
            fn = self._code.apply_fns[rule]
        except KeyError:
            raise AlgorithmError(
                f"{self.rule_set.name}: unknown rule {rule!r}"
            ) from None
        fn(idx, read, write, self)

    def tiled(self, copies):
        check = self.rule_set.tile_check
        total = self._copies * copies
        if check is not None and not check(total):
            return None
        prog = type(self).__new__(type(self))
        prog._init_from(
            self.rule_set,
            self._code,
            self.csr.tile(copies),
            {slot: np.tile(arr, copies) for slot, arr in self._params.items()},
            total,
        )
        return prog

    def __getattr__(self, name):
        if name.endswith("_mask"):
            code = self.__dict__.get("_code")
            if code is not None:
                fn = code.pred_fns.get(name[: -len("_mask")])
                if fn is not None:
                    def mask(cols, _fn=fn, _program=self):
                        return _fn(cols, _program)

                    return mask
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )


class IRInputKernelProgram(IRKernelProgram, InputKernelProgram):
    """Generated program additionally implementing the SDR input contract
    (from an :class:`~repro.ir.rules.InputRuleSet`)."""

    def guard_masks(self, cols, clean=None):
        masks = self._code.guard_fn(cols, self)
        if clean is not None:
            for label in self._code.clean_gated:
                mask = masks.get(label)
                if mask is not None:
                    masks[label] = mask & clean
        return masks

    def icorrect_mask(self, cols):
        return self._code.pred_fns["icorrect"](cols, self)

    def reset_mask(self, cols):
        return self._code.pred_fns["reset"](cols, self)

    def apply_reset(self, idx, read, write):
        fn = self._code.reset_fn
        if fn is not None:
            fn(idx, read, write, self)
