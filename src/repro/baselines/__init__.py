"""Baseline systems the paper compares against (reconstructions)."""

from .bfs_tree import BfsTree
from .leader_election import LDIST, LID, LeaderElection
from .mono_reset import ACK, IDLE, MODE, REQ, RESET, MonoReset

__all__ = [
    "BfsTree",
    "LeaderElection",
    "LID",
    "LDIST",
    "MonoReset",
    "MODE",
    "IDLE",
    "REQ",
    "RESET",
    "ACK",
]
