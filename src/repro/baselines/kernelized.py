"""Kernel (struct-of-arrays) port of the mono-initiator reset baseline.

:class:`~repro.baselines.mono_reset.MonoReset` flattens to three wave /
tree columns — ``mode`` as an int8 enum over ``(IDLE, REQ, RESET, ACK)``,
``tdist`` as int64, ``tparent`` as an optional process index — joined
with the columns of the ported input algorithm.  The wave guards are
parent/child gathers: *children of u* is the edge mask
``parent_v = u`` (one pull against ``edge_src``), and the parent's mode
is a single fancy-index gather on the ``tparent`` column.  The BFS-tree
layer's lexicographic neighbor minimum ``(dist_v, v)`` is one masked
segmented min over the composite key ``dist_v · N + v`` (the
``bestPtr``-argmin pattern from the alliance port).

The input algorithm contributes its own vectorized
``P_ICorrect``/``reset`` and rule guards, gated here by the baseline's
``P_Clean`` ("whole closed neighborhood wave-idle") exactly like the
dict host wiring.  Composite atomicity: actions read the frozen
pre-step columns and write the double buffer.  Equivalence with the
dict implementation is machine-checked by the paranoid lockstep mode
and the backend-equivalence tests.
"""

from __future__ import annotations

import numpy as np

from ..core.kernel.csr import CSRAdjacency
from ..core.kernel.programs import InputKernelProgram, KernelProgram
from ..core.kernel.schema import Schema, Var
from .bfs_tree import DIST_VAR, PARENT_VAR
from .mono_reset import MODE, MODES, WAVE_RULES

__all__ = ["MonoResetKernelProgram"]

#: Integer codes of the ``mode`` enum (indices into MODES).
_IDLE, _REQ, _RESET, _ACK = 0, 1, 2, 3

#: Neutral element for the masked min over composite tree keys.
_NO_KEY = np.iinfo(np.int64).max // 2


class MonoResetKernelProgram(KernelProgram):
    """Vectorized ``I ∘ MonoReset`` for a kernel-ported input ``I``."""

    __slots__ = (
        "csr", "input", "schema", "rules", "root", "n_base", "_is_root",
        "_edge_true",
    )

    def __init__(self, algorithm, input_program: InputKernelProgram):
        self.csr = CSRAdjacency(algorithm.network)
        self.input = input_program
        self.schema = Schema(
            Var.enum(MODE, MODES),
            Var.int(DIST_VAR),
            Var.opt_index(PARENT_VAR),
            *input_program.schema.vars,
        )
        self.rules = algorithm.rule_names()
        self.root = algorithm.root
        self.n_base = algorithm.network.n
        self._init_constants(1)

    def _init_constants(self, copies: int) -> None:
        #: Root flag per process slot (one distinguished root per block).
        self._is_root = np.zeros(self.csr.n, dtype=np.bool_)
        self._is_root[
            np.arange(copies, dtype=np.int64) * self.n_base + self.root
        ] = True
        self._edge_true = np.ones(self.csr.indices.shape[0], dtype=np.bool_)

    def tiled(self, copies: int) -> "MonoResetKernelProgram | None":
        input_tiled = self.input.tiled(copies)
        if input_tiled is None:
            return None
        prog = object.__new__(MonoResetKernelProgram)
        prog.csr = self.csr.tile(copies)
        prog.input = input_tiled
        prog.schema = self.schema
        prog.rules = self.rules
        prog.root = self.root
        prog.n_base = self.n_base
        prog._init_constants(copies)
        return prog

    # ------------------------------------------------------------------
    def _tree_best(self, tdist: np.ndarray):
        """``(best_dist, best_v, want)``: the BFS layer's neighbor argmin.

        Lexicographic ``min (dist_v, v)`` over ``N(u)`` via one segmented
        min of the composite key ``dist_v · N + v`` (``v < N``, so key
        order is exactly pair order).
        """
        csr = self.csr
        key = csr.pull(tdist) * csr.n + csr.indices
        best_key = csr.min_neigh(key, self._edge_true, _NO_KEY)
        best_d = best_key // csr.n
        best_v = best_key % csr.n
        want = np.minimum(best_d + 1, self.n_base)
        return best_d, best_v, want

    def _gather_parent(self, column: np.ndarray, parent: np.ndarray) -> np.ndarray:
        """``column[parent]`` with ``-1`` (⊥) rows gathered harmlessly."""
        return column[np.maximum(parent, 0)]

    # ------------------------------------------------------------------
    def guard_masks(self, cols) -> dict[str, np.ndarray]:
        csr = self.csr
        mode, tdist, parent = cols[MODE], cols[DIST_VAR], cols[PARENT_VAR]
        is_root = self._is_root

        idle = mode == _IDLE
        edge_mode = csr.pull(mode)
        # P_Clean(u): every member of N[u] (u included) is wave-idle.
        clean = idle & csr.all_neigh(edge_mode == _IDLE)
        icorrect, _, input_masks = self.input.host_masks(cols, clean)

        # children(u) = {v ∈ N(u) | parent_v = u}, as an edge mask.
        child_edge = csr.pull(parent) == csr.edge_src
        child_requests = csr.any_neigh(child_edge & (edge_mode == _REQ))
        needs_reset = ~icorrect | child_requests
        children_all_ack = csr.all_neigh(~child_edge | (edge_mode == _ACK))

        has_parent = parent >= 0
        parent_mode = self._gather_parent(mode, parent)
        idle_or_req = idle | (mode == _REQ)

        # Tree coherence (the BFS layer's single rule).
        best_d, _, want = self._tree_best(tdist)
        parent_is_neighbor = csr.any_neigh(csr.indices == csr.own(parent))
        coherent = np.where(
            is_root,
            (tdist == 0) & ~has_parent,
            (tdist == want)
            & has_parent
            & parent_is_neighbor
            & (self._gather_parent(tdist, parent) == best_d),
        )

        masks = {
            "rule_req": ~is_root & idle & needs_reset,
            "rule_reset_root": is_root & idle_or_req & needs_reset,
            "rule_reset_down": (
                ~is_root & idle_or_req & has_parent & (parent_mode == _RESET)
            ),
            "rule_ack": ~is_root & (mode == _RESET) & children_all_ack,
            "rule_idle": np.where(
                is_root,
                (mode == _RESET) & children_all_ack,
                (mode == _ACK) & has_parent & (parent_mode == _IDLE),
            ),
            "rule_tree": ~coherent,
        }
        masks.update(input_masks)
        return masks

    # ------------------------------------------------------------------
    def normal_mask(self, cols) -> np.ndarray:
        """Per-process conjunct of ``MonoReset.is_normal``.

        ``mode = IDLE ∧ P_ICorrect`` — its all-processes conjunction is
        exactly the baseline's normal-configuration predicate, so fused
        runs and stabilization probes detect recovery without decoding.
        """
        return (cols[MODE] == _IDLE) & self.input.icorrect_mask(cols)

    # ------------------------------------------------------------------
    def apply(self, rule, idx, read, write) -> None:
        if rule == "rule_req":
            write[MODE][idx] = _REQ
        elif rule in ("rule_reset_root", "rule_reset_down"):
            write[MODE][idx] = _RESET
            self.input.apply_reset(idx, read, write)
        elif rule == "rule_ack":
            write[MODE][idx] = _ACK
        elif rule == "rule_idle":
            write[MODE][idx] = _IDLE
        elif rule == "rule_tree":
            _, best_v, want = self._tree_best(read[DIST_VAR])
            root_rows = self._is_root[idx]
            write[DIST_VAR][idx] = np.where(root_rows, 0, want[idx])
            write[PARENT_VAR][idx] = np.where(root_rows, -1, best_v[idx])
        else:
            self.input.apply(rule, idx, read, write)


assert tuple(WAVE_RULES) == (
    "rule_req", "rule_reset_root", "rule_reset_down", "rule_ack", "rule_idle"
)
assert tuple(MODES).index("IDLE") == _IDLE and tuple(MODES).index("ACK") == _ACK
