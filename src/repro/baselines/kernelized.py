"""IR definition of the mono-initiator reset baseline.

:func:`mono_rule_set` composes ``I ∘ MonoReset`` at the IR level: wave
mode (int8 enum over ``(IDLE, REQ, RESET, ACK)``), BFS-tree distance and
parent columns joined with the input algorithm's
:class:`~repro.ir.rules.InputRuleSet`.  The wave guards are parent/child
gathers — *children of u* is the edge test ``parent_v = u`` against the
edge source, the parent's mode a pointer :func:`~repro.ir.gather` on the
``tparent`` column — and the BFS layer's lexicographic neighbor minimum
``(dist_v, v)`` is an argmin over the composite key ``dist_v · N + v``
(the ``bestPtr`` pattern from the alliance port).

The input's rules are gated by the baseline's ``P_Clean`` ("whole closed
neighborhood wave-idle") exactly like the dict host wiring; equivalence
with the dict implementation is machine-checked by paranoid lockstep,
the backend-equivalence tests, and ``python -m repro.ir check``.
"""

from __future__ import annotations

import numpy as np

from ..core.kernel.schema import Schema, Var
from ..ir import (
    Assign,
    Rule,
    RuleSet,
    all_neighbors,
    any_neighbors,
    col,
    gather,
    min_over_neighbors,
    minimum,
    neigh,
    neigh_index,
    nprocs,
    own,
    param,
    proc_index,
    where,
)
from ..ir.kernelc import IRKernelProgram
from .bfs_tree import DIST_VAR, PARENT_VAR
from .mono_reset import MODE, MODES, WAVE_RULES

__all__ = ["mono_rule_set", "MonoResetKernelProgram"]

#: Integer codes of the ``mode`` enum (indices into MODES).
_IDLE, _REQ, _RESET, _ACK = 0, 1, 2, 3

#: Neutral element for the masked min over composite tree keys.
_NO_KEY = np.iinfo(np.int64).max // 2


def mono_rule_set(algorithm, input_rule_set) -> RuleSet:
    """``I ∘ MonoReset`` as one composed rule set over the joint schema."""
    network = algorithm.network
    n_base = network.n
    # Root flag per process slot; tiling repeats it per block, giving one
    # distinguished root per trial.
    is_root = param(
        tuple(u == algorithm.root for u in range(n_base)), "is_root"
    )

    mode, tdist, parent = col(MODE), col(DIST_VAR), col(PARENT_VAR)
    idle = mode == _IDLE
    edge_mode = neigh(mode)

    # P_Clean(u): every member of N[u] (u included) is wave-idle.
    clean = idle & all_neighbors(edge_mode == _IDLE)
    icorrect = input_rule_set.icorrect

    # children(u) = {v ∈ N(u) | parent_v = u}, as an edge test.
    child_edge = neigh(parent) == own(proc_index())
    child_requests = any_neighbors(child_edge & (edge_mode == _REQ))
    needs_reset = ~icorrect | child_requests
    children_all_ack = all_neighbors(~child_edge | (edge_mode == _ACK))

    has_parent = parent >= 0
    parent_mode = gather(parent, mode)
    idle_or_req = idle | (mode == _REQ)

    # The BFS layer's neighbor argmin: lexicographic min (dist_v, v) over
    # N(u) via one reduction of the composite key dist_v · N + v (v < N,
    # so key order is exactly pair order).
    best_key = min_over_neighbors(
        neigh(tdist) * nprocs() + neigh_index(), default=_NO_KEY
    )
    best_d = best_key // nprocs()
    best_v = best_key % nprocs()
    want = minimum(best_d + 1, n_base)

    parent_is_neighbor = any_neighbors(neigh_index() == own(parent))
    coherent = where(
        is_root,
        (tdist == 0) & ~has_parent,
        (tdist == want)
        & has_parent
        & parent_is_neighbor
        & (gather(parent, tdist) == best_d),
    )

    reset_action = tuple(input_rule_set.reset_action)
    rules = [
        Rule("rule_req", ~is_root & idle & needs_reset,
             [Assign(MODE, _REQ)]),
        Rule("rule_reset_root", is_root & idle_or_req & needs_reset,
             [Assign(MODE, _RESET), *reset_action]),
        Rule("rule_reset_down",
             ~is_root & idle_or_req & has_parent & (parent_mode == _RESET),
             [Assign(MODE, _RESET), *reset_action]),
        Rule("rule_ack",
             ~is_root & (mode == _RESET) & children_all_ack,
             [Assign(MODE, _ACK)]),
        Rule("rule_idle",
             where(is_root,
                   (mode == _RESET) & children_all_ack,
                   (mode == _ACK) & has_parent & (parent_mode == _IDLE)),
             [Assign(MODE, _IDLE)]),
        Rule("rule_tree", ~coherent,
             [Assign(DIST_VAR, where(is_root, 0, want)),
              Assign(PARENT_VAR, where(is_root, -1, best_v))]),
    ]
    for rule in input_rule_set.rules:
        guard = clean & rule.guard if rule.clean_gated else rule.guard
        rules.append(Rule(rule.label, guard, rule.action))

    return RuleSet(
        f"mono-reset({input_rule_set.name})",
        network,
        Schema(Var.enum(MODE, MODES), Var.int(DIST_VAR),
               Var.opt_index(PARENT_VAR), *input_rule_set.schema.vars),
        rules,
        # Per-process conjunct of ``MonoReset.is_normal``: its
        # all-processes conjunction is exactly the baseline's normal
        # configuration predicate, so fused runs and stabilization probes
        # detect recovery without decoding.
        predicates={"normal": idle & icorrect},
        tile_check=input_rule_set.tile_check,
    )


class MonoResetKernelProgram(IRKernelProgram):
    """Generated ``I ∘ MonoReset`` program for an IR-ported input."""

    def __init__(self, algorithm, input_program):
        super().__init__(mono_rule_set(algorithm, input_program.rule_set))


assert tuple(WAVE_RULES) == (
    "rule_req", "rule_reset_root", "rule_reset_down", "rule_ack", "rule_idle"
)
assert tuple(MODES).index("IDLE") == _IDLE and tuple(MODES).index("ACK") == _ACK
