"""Baseline: mono-initiator reset in the style of Arora & Gouda [4].

The related work compares SDR's fully distributed, cooperative resets with
the classical *centralized* alternative: inconsistency reports travel up a
spanning tree to a distinguished root, which then runs a global
reset-and-acknowledge wave over the whole network (stabilization
``O(n + Δ·D)`` rounds in [4]).  This module reconstructs that architecture
on top of the :class:`~repro.baselines.bfs_tree.BfsTree` substrate:

* ``mode = IDLE`` — no reset activity; the input algorithm may run when the
  whole closed neighborhood is idle (the baseline's ``P_Clean``);
* ``mode = REQ`` — a locally detected inconsistency (or a child's request)
  travelling up the tree;
* ``mode = RESET`` — the root's reset wave travelling down, re-initializing
  the input algorithm (``reset(u)``) at every process;
* ``mode = ACK`` — completion feedback travelling back up; when it reaches
  the root, idleness propagates back down.

Scope (documented in DESIGN.md): unlike SDR, this reconstruction is *not*
proven self-stabilizing from arbitrary wave/tree states — the experiments
run it in the transient-fault scenario (clean tree and wave, corrupted
input state), which is generous to the baseline.  Even so, every fault
triggers a **whole-network** reset serialized through the root, while SDR's
resets stay local and cooperative — experiment F6 measures exactly that
gap.
"""

from __future__ import annotations

from random import Random
from typing import Any

from ..core.algorithm import Algorithm
from ..core.configuration import Configuration
from ..core.exceptions import AlgorithmError
from ..reset.interface import InputAlgorithm
from .bfs_tree import PARENT_VAR, BfsTree

__all__ = ["MonoReset", "IDLE", "REQ", "RESET", "ACK", "MODE"]

IDLE = "IDLE"
REQ = "REQ"
RESET = "RESET"
ACK = "ACK"
MODES = (IDLE, REQ, RESET, ACK)

#: Variable name of the wave mode.
MODE = "mode"

WAVE_RULES = ("rule_req", "rule_reset_root", "rule_reset_down", "rule_ack", "rule_idle")


class MonoReset(Algorithm):
    """The composition ``I ∘ MonoReset`` (tree + wave + input algorithm).

    Acts as the input algorithm's host: its ``p_clean`` is "every member of
    ``N[u]`` is wave-idle", mirroring SDR's gating so the two reset
    architectures host the same input algorithms unchanged.
    """

    name = "mono-reset"
    mutually_exclusive_rules = False  # tree repair may overlap wave moves

    def __init__(self, input_algorithm: InputAlgorithm, root: int = 0):
        super().__init__(input_algorithm.network)
        self.input = input_algorithm
        self.input.attach(self)
        self.tree = BfsTree(input_algorithm.network, root=root)
        self.root = root
        self.name = f"{input_algorithm.name} o mono-reset"

        reserved = {MODE, *self.tree.variables()}
        overlap = reserved & set(input_algorithm.variables())
        if overlap:
            raise AlgorithmError(f"input algorithm reuses reserved variables {overlap}")
        self._variables = (MODE, *self.tree.variables(), *input_algorithm.variables())
        self._rules = (*WAVE_RULES, *self.tree.rule_names(), *input_algorithm.rule_names())

    # ------------------------------------------------------------------
    # Host protocol for the input algorithm
    # ------------------------------------------------------------------
    def p_clean(self, cfg: Configuration, u: int) -> bool:
        """The baseline's ``P_Clean``: whole closed neighborhood wave-idle."""
        return all(cfg[v][MODE] == IDLE for v in self.network.closed_neighbors(u))

    # ------------------------------------------------------------------
    # Wave guards
    # ------------------------------------------------------------------
    def _child_requests(self, cfg: Configuration, u: int) -> bool:
        return any(cfg[v][MODE] == REQ for v in self.tree.children(cfg, u))

    def _needs_reset(self, cfg: Configuration, u: int) -> bool:
        return not self.input.p_icorrect(cfg, u) or self._child_requests(cfg, u)

    def _children_all_ack(self, cfg: Configuration, u: int) -> bool:
        return all(cfg[v][MODE] == ACK for v in self.tree.children(cfg, u))

    def _guard_req(self, cfg: Configuration, u: int) -> bool:
        return u != self.root and cfg[u][MODE] == IDLE and self._needs_reset(cfg, u)

    def _guard_reset_root(self, cfg: Configuration, u: int) -> bool:
        return u == self.root and cfg[u][MODE] in (IDLE, REQ) and self._needs_reset(cfg, u)

    def _guard_reset_down(self, cfg: Configuration, u: int) -> bool:
        if u == self.root or cfg[u][MODE] not in (IDLE, REQ):
            return False
        parent = cfg[u][PARENT_VAR]
        return parent is not None and cfg[parent][MODE] == RESET

    def _guard_ack(self, cfg: Configuration, u: int) -> bool:
        return (
            u != self.root
            and cfg[u][MODE] == RESET
            and self._children_all_ack(cfg, u)
        )

    def _guard_idle(self, cfg: Configuration, u: int) -> bool:
        if u == self.root:
            return cfg[u][MODE] == RESET and self._children_all_ack(cfg, u)
        if cfg[u][MODE] != ACK:
            return False
        parent = cfg[u][PARENT_VAR]
        return parent is not None and cfg[parent][MODE] == IDLE

    # ------------------------------------------------------------------
    # Algorithm interface
    # ------------------------------------------------------------------
    def variables(self) -> tuple[str, ...]:
        return self._variables

    def rule_names(self) -> tuple[str, ...]:
        return self._rules

    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        if rule == "rule_req":
            return self._guard_req(cfg, u)
        if rule == "rule_reset_root":
            return self._guard_reset_root(cfg, u)
        if rule == "rule_reset_down":
            return self._guard_reset_down(cfg, u)
        if rule == "rule_ack":
            return self._guard_ack(cfg, u)
        if rule == "rule_idle":
            return self._guard_idle(cfg, u)
        if rule in self.tree.rule_names():
            return self.tree.guard(rule, cfg, u)
        return self.input.guard(rule, cfg, u)

    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        if rule == "rule_req":
            return {MODE: REQ}
        if rule in ("rule_reset_root", "rule_reset_down"):
            updates: dict[str, Any] = {MODE: RESET}
            updates.update(self.input.reset_updates(cfg, u))
            return updates
        if rule == "rule_ack":
            return {MODE: ACK}
        if rule == "rule_idle":
            return {MODE: IDLE}
        if rule in self.tree.rule_names():
            return self.tree.execute(rule, cfg, u)
        return self.input.execute(rule, cfg, u)

    # ------------------------------------------------------------------
    def initial_state(self, u: int) -> dict[str, Any]:
        state = {MODE: IDLE}
        state.update(self.tree.initial_state(u))
        state.update(self.input.initial_state(u))
        return state

    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        state = {MODE: MODES[rng.randrange(4)]}
        state.update(self.tree.random_state(u, rng))
        state.update(self.input.random_state(u, rng))
        return state

    # ------------------------------------------------------------------
    def is_normal(self, cfg: Configuration) -> bool:
        """All wave-idle and input locally correct everywhere."""
        return all(
            cfg[u][MODE] == IDLE and self.input.p_icorrect(cfg, u)
            for u in self.network.processes()
        )

    # ------------------------------------------------------------------
    def rule_set(self):
        """``I ∘ MonoReset`` composed at the IR level, when ``I`` is ported."""
        try:
            from .kernelized import mono_rule_set
        except ModuleNotFoundError as exc:
            if exc.name and exc.name.split(".")[0] == "numpy":
                return None  # numpy missing: dict backend only
            raise
        input_rule_set = self.input.input_rule_set()
        if input_rule_set is None:
            return None
        return mono_rule_set(self, input_rule_set)

    def kernel_program(self):
        """Array-backend program: available when the input algorithm is ported."""
        try:
            from .kernelized import MonoResetKernelProgram
        except ModuleNotFoundError as exc:
            if exc.name and exc.name.split(".")[0] == "numpy":
                return None  # numpy missing: dict backend only
            raise
        input_program = self.input.kernel_input_program()
        if input_program is None:
            return None
        return MonoResetKernelProgram(self, input_program)
