"""Silent self-stabilizing leader election (max identifier) substrate.

The mono-initiator reset of Arora & Gouda [4] assumes an *identified*
network in which a root can be agreed upon; our
:class:`~repro.baselines.mono_reset.MonoReset` simplifies this to a
distinguished root.  This module supplies the missing ingredient as its own
silent self-stabilizing layer, in the classical max-id flooding style
(cf. the polynomial-step leader election literature the paper cites [2]):

Each process maintains

* ``lid``  — the identifier of its believed leader;
* ``ldist`` — its believed distance to that leader (capped at ``n − 1``).

A process's *best offer* is the largest ``(lid, −dist)`` among its own
``(id_u, 0)`` and every neighbor's ``(lid_v, ldist_v + 1)`` with
``ldist_v + 1 ≤ n − 1``.  The single rule re-points a process at its best
offer.  *Fake* identifiers (corrupted ``lid`` values larger than any real
id) cannot sustain themselves: they have no process offering distance 0, so
every round their minimum claimed distance grows until the ``n − 1`` cap
eliminates them.

Terminal configurations: every process knows the true maximum identifier
and its exact BFS distance to it — which also yields a *rooted spanning
tree* for free (:meth:`LeaderElection.parent_of`), completing the substrate
stack a faithful Arora–Gouda deployment needs.
"""

from __future__ import annotations

from random import Random
from typing import Any

import networkx as nx

from ..core.algorithm import Algorithm
from ..core.configuration import Configuration
from ..core.graph import Network

__all__ = ["LeaderElection", "LID", "LDIST"]

LID = "lid"
LDIST = "ldist"


class LeaderElection(Algorithm):
    """Max-identifier leader election with distance-bounded flooding."""

    name = "leader-election"
    mutually_exclusive_rules = True

    def __init__(self, network: Network):
        super().__init__(network)
        self._true_leader = max(network.processes(), key=network.id_of)
        graph = network.to_networkx()
        self._true_dist = nx.single_source_shortest_path_length(
            graph, self._true_leader
        )

    # ------------------------------------------------------------------
    @property
    def true_leader(self) -> int:
        """The process holding the maximum identifier."""
        return self._true_leader

    def _best_offer(self, cfg: Configuration, u: int) -> tuple[int, int]:
        """``(lid, dist)`` of the strongest claim visible to ``u``.

        Claims are ranked by larger ``lid`` first, then smaller distance.
        """
        best_lid, best_dist = self.network.id_of(u), 0
        cap = self.network.n - 1
        for v in self.network.neighbors(u):
            lid, dist = cfg[v][LID], cfg[v][LDIST] + 1
            if dist <= cap and (lid, -dist) > (best_lid, -best_dist):
                best_lid, best_dist = lid, dist
        return best_lid, best_dist

    # ------------------------------------------------------------------
    def variables(self) -> tuple[str, ...]:
        return (LID, LDIST)

    def rule_names(self) -> tuple[str, ...]:
        return ("rule_elect",)

    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        self.check_rule(rule)
        return (cfg[u][LID], cfg[u][LDIST]) != self._best_offer(cfg, u)

    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        self.check_rule(rule)
        lid, dist = self._best_offer(cfg, u)
        return {LID: lid, LDIST: dist}

    def initial_state(self, u: int) -> dict[str, Any]:
        return {LID: self.network.id_of(u), LDIST: 0}

    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        # Corrupted lid may exceed every real identifier (a fake leader).
        fake_ceiling = max(self.network.ids) + self.network.n
        return {
            LID: rng.randrange(fake_ceiling + 1),
            LDIST: rng.randrange(self.network.n),
        }

    # ------------------------------------------------------------------
    def rule_set(self):
        """IR definition: best-offer flooding as one declarative rule.

        A claim ``(lid, dist)`` is ranked by larger ``lid`` first, then
        smaller distance, so with ``cap = n − 1`` the composite key
        ``lid · n + (cap − dist)`` orders claims exactly (``0 ≤ cap −
        dist < n``); one max-reduction over neighbor claims (distance
        ``ldist_v + 1``, admitted while ``≤ cap``) joined with the own
        claim ``(id_u, 0)`` yields the best offer, decoded by ``/ n`` and
        ``mod n``.  Returns ``None`` if identifiers would overflow the
        key (dict backend only).
        """
        ids = tuple(self.network.ids)
        n = self.network.n
        cap = n - 1
        if (max(ids) + n) * n + cap >= 2**63:
            return None  # composite claim key would overflow int64

        from ..core.kernel.schema import Schema, Var
        from ..ir import (
            Assign, Rule, RuleSet, col, max_over_neighbors, maximum, neigh,
            param,
        )

        lid, ldist = col(LID), col(LDIST)
        own_key = param(ids, "ids") * n + cap
        offer = neigh(lid) * n + (cap - (neigh(ldist) + 1))
        best = maximum(
            max_over_neighbors(offer, where=neigh(ldist) + 1 <= cap,
                               default=-1),
            own_key,
        )
        best_lid = best // n
        best_dist = cap - best % n
        return RuleSet(
            self.name,
            self.network,
            Schema(Var.int(LID), Var.int(LDIST)),
            [
                Rule("rule_elect",
                     (lid != best_lid) | (ldist != best_dist),
                     [Assign(LID, best_lid), Assign(LDIST, best_dist)])
            ],
        )

    # ------------------------------------------------------------------
    # Output views
    # ------------------------------------------------------------------
    def elected(self, cfg: Configuration) -> bool:
        """Whether every process agrees on the true leader at the true
        distance (the terminal configurations)."""
        true_id = self.network.id_of(self._true_leader)
        return all(
            cfg[u][LID] == true_id and cfg[u][LDIST] == self._true_dist[u]
            for u in self.network.processes()
        )

    def parent_of(self, cfg: Configuration, u: int) -> int | None:
        """Tree parent in the converged configuration (``None`` at the
        leader): the smallest-index neighbor one step closer to the leader."""
        if cfg[u][LDIST] == 0:
            return None
        target = cfg[u][LDIST] - 1
        for v in self.network.neighbors(u):
            if cfg[v][LDIST] == target and cfg[v][LID] == cfg[u][LID]:
                return v
        return None

    def spanning_tree_edges(self, cfg: Configuration) -> list[tuple[int, int]]:
        """The rooted spanning tree induced by a converged election."""
        edges = []
        for u in self.network.processes():
            parent = self.parent_of(cfg, u)
            if parent is not None:
                edges.append((parent, u))
        return edges
