"""Silent self-stabilizing BFS spanning tree with a distinguished root.

Substrate for the mono-initiator reset baseline
(:mod:`repro.baselines.mono_reset`).  Each process maintains

* ``dist`` — its believed distance to the root, capped at ``n``;
* ``parent`` — the neighbor it routes through (``None`` at the root).

The root pins ``(dist, parent) = (0, None)``; every other process keeps
``dist = min(min_neighbor_dist + 1, n)`` with ``parent`` a neighbor
achieving the minimum.  Terminal configurations are exactly the BFS trees
rooted at the distinguished process.  (Round complexity is ``O(D)``; move
complexity of this classical scheme under the unfair daemon can be very
large from adversarial states — see Devismes & Johnen [22] — which is part
of why the paper's SDR avoids global structures.)
"""

from __future__ import annotations

from random import Random
from typing import Any

import networkx as nx

from ..core.algorithm import Algorithm
from ..core.configuration import Configuration
from ..core.graph import Network

__all__ = ["BfsTree", "DIST_VAR", "PARENT_VAR"]

DIST_VAR = "tdist"
PARENT_VAR = "tparent"


class BfsTree(Algorithm):
    """Distinguished-root self-stabilizing BFS spanning tree."""

    name = "bfs-tree"
    mutually_exclusive_rules = True

    def __init__(self, network: Network, root: int = 0):
        super().__init__(network)
        if not 0 <= root < network.n:
            raise ValueError(f"root {root} out of range")
        self.root = root
        # Ground truth for initial states and verification.
        graph = network.to_networkx()
        self._true_dist = nx.single_source_shortest_path_length(graph, root)

    # ------------------------------------------------------------------
    def _best(self, cfg: Configuration, u: int) -> tuple[int, int]:
        """``(min neighbor dist, argmin neighbor)`` with index tie-break."""
        best_v = min(self.network.neighbors(u), key=lambda v: (cfg[v][DIST_VAR], v))
        return cfg[best_v][DIST_VAR], best_v

    def _coherent(self, cfg: Configuration, u: int) -> bool:
        if u == self.root:
            return cfg[u][DIST_VAR] == 0 and cfg[u][PARENT_VAR] is None
        best_dist, _ = self._best(cfg, u)
        want = min(best_dist + 1, self.network.n)
        parent = cfg[u][PARENT_VAR]
        return (
            cfg[u][DIST_VAR] == want
            and parent is not None
            and self.network.are_neighbors(u, parent)
            and cfg[parent][DIST_VAR] == best_dist
        )

    # ------------------------------------------------------------------
    def variables(self) -> tuple[str, ...]:
        return (DIST_VAR, PARENT_VAR)

    def rule_names(self) -> tuple[str, ...]:
        return ("rule_tree",)

    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        self.check_rule(rule)
        return not self._coherent(cfg, u)

    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        self.check_rule(rule)
        if u == self.root:
            return {DIST_VAR: 0, PARENT_VAR: None}
        best_dist, best_v = self._best(cfg, u)
        return {DIST_VAR: min(best_dist + 1, self.network.n), PARENT_VAR: best_v}

    # ------------------------------------------------------------------
    def initial_state(self, u: int) -> dict[str, Any]:
        """A *correct* BFS tree (the baseline's clean-substrate start)."""
        if u == self.root:
            return {DIST_VAR: 0, PARENT_VAR: None}
        dist = self._true_dist[u]
        parent = min(
            v for v in self.network.neighbors(u) if self._true_dist[v] == dist - 1
        )
        return {DIST_VAR: dist, PARENT_VAR: parent}

    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        neighbors = self.network.neighbors(u)
        parent = None if rng.random() < 0.2 else neighbors[rng.randrange(len(neighbors))]
        return {DIST_VAR: rng.randrange(self.network.n + 1), PARENT_VAR: parent}

    # ------------------------------------------------------------------
    def rule_set(self):
        """IR definition: the tree rule as one declarative guarded rule.

        The lexicographic neighbor minimum ``(dist_v, v)`` is an argmin
        over the composite key ``dist_v · N + v`` (``v < N``, so key
        order is pair order); both backends are compiled from this.
        """
        from ..core.kernel.schema import Schema, Var
        from ..ir import (
            Assign, Rule, RuleSet, any_neighbors, col, gather,
            min_over_neighbors, minimum, neigh, neigh_index, nprocs, own,
            param, where,
        )

        no_key = (2**63 - 1) // 2
        n = self.network.n
        is_root = param(tuple(u == self.root for u in range(n)), "is_root")
        tdist, parent = col(DIST_VAR), col(PARENT_VAR)

        best_key = min_over_neighbors(
            neigh(tdist) * nprocs() + neigh_index(), default=no_key
        )
        best_d = best_key // nprocs()
        best_v = best_key % nprocs()
        want = minimum(best_d + 1, n)

        has_parent = parent >= 0
        parent_is_neighbor = any_neighbors(neigh_index() == own(parent))
        coherent = where(
            is_root,
            (tdist == 0) & ~has_parent,
            (tdist == want)
            & has_parent
            & parent_is_neighbor
            & (gather(parent, tdist) == best_d),
        )
        return RuleSet(
            self.name,
            self.network,
            Schema(Var.int(DIST_VAR), Var.opt_index(PARENT_VAR)),
            [
                Rule("rule_tree", ~coherent,
                     [Assign(DIST_VAR, where(is_root, 0, want)),
                      Assign(PARENT_VAR, where(is_root, -1, best_v))])
            ],
        )

    # ------------------------------------------------------------------
    def children(self, cfg: Configuration, u: int) -> list[int]:
        """Neighbors currently claiming ``u`` as their tree parent."""
        return [v for v in self.network.neighbors(u) if cfg[v][PARENT_VAR] == u]

    def is_correct_tree(self, cfg: Configuration) -> bool:
        """Whether the layer encodes a true BFS tree of the network."""
        return all(self._coherent(cfg, u) for u in self.network.processes()) and all(
            cfg[u][DIST_VAR] == self._true_dist[u] for u in self.network.processes()
        )
