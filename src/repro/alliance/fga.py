"""Algorithm FGA — 1-minimal (f,g)-alliance (paper, Algorithm 3, Section 6).

Given non-negative node functions ``f`` and ``g`` with
``δ_u ≥ max(f(u), g(u))``, FGA computes, in an *identified* network, a set
``A = {u | col_u}`` that is a 1-minimal (f,g)-alliance: every ``u ∉ A`` has
at least ``f(u)`` neighbors in ``A``, every ``u ∈ A`` has at least ``g(u)``
neighbors in ``A``, and removing any single member breaks the property.

Starting from ``γ_init`` (everybody in the alliance), processes *leave* the
alliance one by one; the pointer machinery (``ptr``) makes removals locally
central — at most one process of any closed neighborhood leaves per step —
and the score machinery (``scr``) guarantees that ``realScr(u) ≥ 0`` stays
closed, i.e. the set remains an alliance throughout.

FGA is not self-stabilizing on its own (Theorem 9: it is a correct
terminating algorithm from ``γ_init``); ``FGA ∘ SDR`` is silent and
self-stabilizing (Theorem 13) in ``O(Δ·n·m)`` moves and ``≤ 8n+4`` rounds.

Typo fixes applied from the paper (documented in DESIGN.md): in
``bestPtr(u)`` the filter and argmin run over ``v ∈ N[u]`` with ``canQ_v``
and identifier ``id_v`` (the paper prints ``canQ_u`` / ``id_u``).
"""

from __future__ import annotations

from random import Random
from typing import Any, Callable, Sequence

from ..core.configuration import Configuration
from ..core.exceptions import AlgorithmError
from ..core.graph import Network
from ..reset.interface import InputAlgorithm

__all__ = ["FGA", "COL", "SCR", "CANQ", "PTR", "resolve_node_function"]

#: Variable names.
COL = "col"
SCR = "scr"
CANQ = "canQ"
PTR = "ptr"

#: The ⊥ pointer value.
BOTTOM = None

NodeFunction = Callable[[int], int] | Sequence[int] | int


def resolve_node_function(spec: NodeFunction, network: Network) -> tuple[int, ...]:
    """Normalize an ``f``/``g`` specification to a per-process tuple.

    Accepts a constant, a sequence indexed by process, or a callable on the
    process index.
    """
    if isinstance(spec, int):
        return tuple(spec for _ in network.processes())
    if callable(spec):
        return tuple(int(spec(u)) for u in network.processes())
    values = tuple(int(x) for x in spec)
    if len(values) != network.n:
        raise AlgorithmError(
            f"node function has {len(values)} entries for {network.n} processes"
        )
    return values


class FGA(InputAlgorithm):
    """The paper's Algorithm FGA.

    Parameters
    ----------
    network:
        Identified network (``network.ids`` must be unique — enforced by
        :class:`~repro.core.graph.Network`).
    f, g:
        Non-negative node functions (constant, sequence, or callable);
        every process must satisfy ``δ_u ≥ max(f(u), g(u))`` — a condition
        that guarantees a solution exists.
    """

    name = "FGA"
    mutually_exclusive_rules = True

    def __init__(self, network: Network, f: NodeFunction, g: NodeFunction):
        super().__init__(network)
        self.f = resolve_node_function(f, network)
        self.g = resolve_node_function(g, network)
        for u in network.processes():
            if self.f[u] < 0 or self.g[u] < 0:
                raise AlgorithmError(f"f and g must be non-negative (process {u})")
            if network.degree(u) < max(self.f[u], self.g[u]):
                raise AlgorithmError(
                    f"process {u} has degree {network.degree(u)} < "
                    f"max(f, g) = {max(self.f[u], self.g[u])}; no solution guaranteed"
                )

    # ==================================================================
    # Macros (Algorithm 3)
    # ==================================================================
    def in_alliance_count(self, cfg: Configuration, u: int) -> int:
        """``#InAll(u)``: number of neighbors currently in the alliance."""
        return sum(1 for w in self.network.neighbors(u) if cfg[w][COL])

    def real_scr(self, cfg: Configuration, u: int, col: bool | None = None) -> int:
        """``realScr(u)``: compares ``#InAll(u)`` against ``f`` or ``g``.

        ``col`` overrides ``u``'s own membership (used by actions that
        first flip ``col_u`` and then recompute, like ``rule_Clr``).
        """
        threshold = self.g[u] if (cfg[u][COL] if col is None else col) else self.f[u]
        count = self.in_alliance_count(cfg, u)
        if count < threshold:
            return -1
        if count == threshold:
            return 0
        return 1

    def p_can_quit(self, cfg: Configuration, u: int, col: bool | None = None) -> bool:
        """``P_canQuit(u) ≡ col_u ∧ #InAll(u) ≥ f(u) ∧ ∀v ∈ N(u): scr_v = 1``."""
        own_col = cfg[u][COL] if col is None else col
        return (
            own_col
            and self.in_alliance_count(cfg, u) >= self.f[u]
            and all(cfg[v][SCR] == 1 for v in self.network.neighbors(u))
        )

    def p_to_quit(self, cfg: Configuration, u: int) -> bool:
        """``P_toQuit(u) ≡ P_canQuit(u) ∧ ∀v ∈ N[u]: ptr_v = u``."""
        return self.p_can_quit(cfg, u) and all(
            cfg[v][PTR] == u for v in self.network.closed_neighbors(u)
        )

    def best_ptr(
        self,
        cfg: Configuration,
        u: int,
        scr: int | None = None,
        canq: bool | None = None,
    ) -> int | None:
        """``bestPtr(u)``: the closed neighbor of smallest identifier that
        can quit, or ⊥ when ``scr_u ≤ 0`` or nobody can quit.

        ``scr``/``canq`` override ``u``'s own values (sequential macro
        semantics: ``upd(u)`` runs ``cmpVar(u)`` first, so ``bestPtr`` sees
        the freshly computed values).
        """
        own_scr = cfg[u][SCR] if scr is None else scr
        if own_scr <= 0:
            return BOTTOM
        candidates = []
        for v in self.network.closed_neighbors(u):
            can = (cfg[v][CANQ] if canq is None or v != u else canq)
            if can:
                candidates.append(v)
        if not candidates:
            return BOTTOM
        return min(candidates, key=self.network.id_of)

    def p_upd_ptr(self, cfg: Configuration, u: int) -> bool:
        """``P_updPtr(u) ≡ ¬P_toQuit(u) ∧ ptr_u ≠ bestPtr(u)``."""
        return not self.p_to_quit(cfg, u) and cfg[u][PTR] != self.best_ptr(cfg, u)

    # ==================================================================
    # SDR interface predicates
    # ==================================================================
    def p_icorrect(self, cfg: Configuration, u: int) -> bool:
        """``P_ICorrect(u)`` of Algorithm 3.

        ``realScr(u) ≥ 0 ∧ [(scr_u = realScr(u) = 1) ∨ ptr_u = ⊥ ∨
        (ptr_u ≠ ⊥ ∧ scr_u = 1 ∧ ¬col_{ptr_u})]``.
        """
        real = self.real_scr(cfg, u)
        if real < 0:
            return False
        ptr = cfg[u][PTR]
        if cfg[u][SCR] == real == 1:
            return True
        if ptr is BOTTOM:
            return True
        return cfg[u][SCR] == 1 and not cfg[ptr][COL]

    def p_reset(self, cfg: Configuration, u: int) -> bool:
        """``P_reset(u) ≡ col_u ∧ ptr_u = ⊥ ∧ canQ_u ∧ scr_u = 1``."""
        state = cfg[u]
        return state[COL] and state[PTR] is BOTTOM and state[CANQ] and state[SCR] == 1

    def reset_updates(self, cfg: Configuration, u: int) -> dict[str, Any]:
        """``reset(u): col := true; ptr := ⊥; canQ := true; scr := 1``."""
        return {COL: True, PTR: BOTTOM, CANQ: True, SCR: 1}

    # ==================================================================
    # Algorithm interface
    # ==================================================================
    def variables(self) -> tuple[str, ...]:
        return (COL, SCR, CANQ, PTR)

    def rule_names(self) -> tuple[str, ...]:
        return ("rule_Clr", "rule_P1", "rule_P2", "rule_Q")

    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        if not (self.p_clean(cfg, u) and self.p_icorrect(cfg, u)):
            return False
        if rule == "rule_Clr":
            return self.p_to_quit(cfg, u)
        if rule == "rule_P1":
            return self.p_upd_ptr(cfg, u) and cfg[u][PTR] is not BOTTOM
        if rule == "rule_P2":
            return self.p_upd_ptr(cfg, u) and cfg[u][PTR] is BOTTOM
        if rule == "rule_Q":
            return (
                not self.p_to_quit(cfg, u)
                and not self.p_upd_ptr(cfg, u)
                and (
                    cfg[u][SCR] != self.real_scr(cfg, u)
                    or cfg[u][CANQ] != self.p_can_quit(cfg, u)
                )
            )
        self.check_rule(rule)
        return False

    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        if rule == "rule_Clr":
            # col_u := false; upd(u)  — upd sees the new col value.
            new_col = False
            scr = self.real_scr(cfg, u, col=new_col)
            canq = self.p_can_quit(cfg, u, col=new_col)
            ptr = self.best_ptr(cfg, u, scr=scr, canq=canq)
            return {COL: new_col, SCR: scr, CANQ: canq, PTR: ptr}
        if rule == "rule_P1":
            # ptr_u := ⊥; cmpVar(u)
            return {
                PTR: BOTTOM,
                SCR: self.real_scr(cfg, u),
                CANQ: self.p_can_quit(cfg, u),
            }
        if rule == "rule_P2":
            # upd(u) = cmpVar(u); ptr := bestPtr(u)
            scr = self.real_scr(cfg, u)
            canq = self.p_can_quit(cfg, u)
            return {
                SCR: scr,
                CANQ: canq,
                PTR: self.best_ptr(cfg, u, scr=scr, canq=canq),
            }
        if rule == "rule_Q":
            # cmpVar(u); if realScr(u) ≤ 0 then ptr := ⊥
            real = self.real_scr(cfg, u)
            updates: dict[str, Any] = {SCR: real, CANQ: self.p_can_quit(cfg, u)}
            if real <= 0:
                updates[PTR] = BOTTOM
            return updates
        self.check_rule(rule)
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------
    def initial_state(self, u: int) -> dict[str, Any]:
        """``γ_init``: everybody in the alliance, scores saturated."""
        return {COL: True, SCR: 1, CANQ: True, PTR: BOTTOM}

    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        pointer_domain = (*self.network.closed_neighbors(u), BOTTOM)
        return {
            COL: rng.random() < 0.5,
            SCR: rng.randrange(-1, 2),
            CANQ: rng.random() < 0.5,
            PTR: pointer_domain[rng.randrange(len(pointer_domain))],
        }

    # ------------------------------------------------------------------
    # Array backend
    # ------------------------------------------------------------------
    def input_rule_set(self):
        try:
            from .kernelized import fga_rule_set

            return fga_rule_set(self)
        except ModuleNotFoundError as exc:
            if exc.name and exc.name.split(".")[0] == "numpy":
                return None  # numpy missing: dict backend only
            raise
        except AlgorithmError:  # ids overflow the kernel's pointer keys
            return None

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def alliance(self, cfg: Configuration) -> set[int]:
        """The computed set ``A = {u | col_u}``."""
        return {u for u in self.network.processes() if cfg[u][COL]}
