"""(f,g)-alliance specification checkers (paper, Section 6.1).

Given ``G = (V, E)`` and node functions ``f, g ≥ 0``, a set ``A ⊆ V`` is an
**(f,g)-alliance** iff every ``u ∉ A`` has at least ``f(u)`` neighbors in
``A`` and every ``v ∈ A`` has at least ``g(v)`` neighbors in ``A``.  ``A``
is **1-minimal** iff removing any single member breaks the property, and
**minimal** iff no proper subset is an (f,g)-alliance.  Property 1 (Dourado
et al.): minimal ⇒ 1-minimal, and when ``f ≥ g`` pointwise, 1-minimal ⇒
minimal.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from ..core.graph import Network

__all__ = [
    "neighbors_in",
    "is_alliance",
    "violating_processes",
    "is_one_minimal",
    "is_fga_stable",
    "one_minimality_guaranteed",
    "is_minimal",
    "is_dominating_set",
    "is_minimal_dominating_set",
]


def neighbors_in(network: Network, members: set[int], u: int) -> int:
    """Number of ``u``'s neighbors inside ``members``."""
    return sum(1 for v in network.neighbors(u) if v in members)


def violating_processes(
    network: Network, members: set[int], f: Sequence[int], g: Sequence[int]
) -> list[int]:
    """Processes whose (f,g)-alliance constraint is violated by ``members``."""
    bad = []
    for u in network.processes():
        need = g[u] if u in members else f[u]
        if neighbors_in(network, members, u) < need:
            bad.append(u)
    return bad


def is_alliance(
    network: Network, members: Iterable[int], f: Sequence[int], g: Sequence[int]
) -> bool:
    """Whether ``members`` is an (f,g)-alliance of the network."""
    return not violating_processes(network, set(members), f, g)


def is_one_minimal(
    network: Network, members: Iterable[int], f: Sequence[int], g: Sequence[int]
) -> bool:
    """Whether ``members`` is a *1-minimal* (f,g)-alliance.

    The set must be an alliance, and dropping any one member must break the
    alliance property.
    """
    members = set(members)
    if not is_alliance(network, members, f, g):
        return False
    for u in members:
        if is_alliance(network, members - {u}, f, g):
            return False
    return True


def is_minimal(
    network: Network,
    members: Iterable[int],
    f: Sequence[int],
    g: Sequence[int],
    exhaustive_limit: int = 20,
) -> bool:
    """Whether ``members`` is a *minimal* (f,g)-alliance.

    Checks that no proper subset is an alliance.  Exponential — guarded by
    ``exhaustive_limit`` on ``|members|`` (test-sized inputs only).
    """
    members = set(members)
    if not is_alliance(network, members, f, g):
        return False
    if len(members) > exhaustive_limit:
        raise ValueError(
            f"minimality check is exponential; refusing |A| = {len(members)} > "
            f"{exhaustive_limit}"
        )
    ordered = sorted(members)
    for size in range(len(ordered)):
        for subset in itertools.combinations(ordered, size):
            if is_alliance(network, set(subset), f, g):
                return False
    return True


def is_fga_stable(
    network: Network, members: Iterable[int], f: Sequence[int], g: Sequence[int]
) -> bool:
    """The stability guarantee FGA's published guards actually enforce.

    **Reproduction finding** (documented in DESIGN.md §6 and
    EXPERIMENTS.md): Theorem 8 claims every terminal configuration carries
    a *1-minimal* alliance, but its proof asserts ``realScr(u) = 1`` for
    all ``u ∈ N[m]`` including the removable process ``m`` itself, which
    only follows from ``#InAll(m) ≥ f(m)`` when ``f(m) > g(m)``.  With
    ``f ≤ g`` somewhere, two blocking effects appear in the published
    guards:

    * a removable member with ``realScr = 0`` cannot self-approve
      (``bestPtr`` returns ⊥ when ``scr ≤ 0``);
    * a ``canQ`` process with ``realScr = 0`` *attracts* its neighbors'
      pointers without ever being able to complete a removal, starving
      removable neighbors of approvals.

    This predicate mirrors the guards exactly: the set is an alliance and
    no member could ever satisfy ``P_toQuit`` once scores and pointers have
    converged.  Every terminal configuration of ``FGA ∘ SDR`` satisfies it;
    when ``f > g`` pointwise it coincides with :func:`is_one_minimal`
    (then every ``canQ`` process has ``realScr = 1`` and the min-identifier
    argument of Theorem 8 goes through).
    """
    members = set(members)
    if not is_alliance(network, members, f, g):
        return False

    def real_scr(u: int) -> int:
        threshold = g[u] if u in members else f[u]
        count = neighbors_in(network, members, u)
        return -1 if count < threshold else (0 if count == threshold else 1)

    can_quit = {
        u
        for u in members
        if neighbors_in(network, members, u) >= f[u]
        and all(real_scr(v) == 1 for v in network.neighbors(u))
    }
    for u in can_quit:
        if real_scr(u) != 1:
            continue  # cannot self-approve: bestPtr(u) = ⊥
        # u quits iff every member of N[u] would point at u, i.e. u is the
        # smallest-identifier canQ process of each closed neighborhood
        # (and each approver has the scr = 1 margin to point at all).
        unanimous = True
        for v in network.closed_neighbors(u):
            if real_scr(v) != 1:
                unanimous = False
                break
            candidates = [x for x in network.closed_neighbors(v) if x in can_quit]
            if not candidates or min(candidates, key=network.id_of) != u:
                unanimous = False
                break
        if unanimous:
            return False  # u could still leave: not a terminal alliance
    return True


def one_minimality_guaranteed(f: Sequence[int], g: Sequence[int]) -> bool:
    """Whether Theorem 8's 1-minimality argument applies: ``f > g``
    pointwise (so every ``canQ`` process has a strict score margin)."""
    return all(fu > gu for fu, gu in zip(f, g))


def is_dominating_set(network: Network, members: Iterable[int]) -> bool:
    """Dominating set = (1,0)-alliance."""
    ones = [1] * network.n
    zeros = [0] * network.n
    return is_alliance(network, members, ones, zeros)


def is_minimal_dominating_set(network: Network, members: Iterable[int]) -> bool:
    """Minimal dominating set = 1-minimal (1,0)-alliance (Property 1.2,
    since ``f = 1 ≥ 0 = g``)."""
    ones = [1] * network.n
    zeros = [0] * network.n
    return is_one_minimal(network, members, ones, zeros)
