"""(f,g)-alliances: Algorithm FGA, instances, spec checkers, baseline."""

from .fga import CANQ, COL, FGA, PTR, SCR, resolve_node_function
from .functions import (
    INSTANCES,
    dominating_set,
    global_defensive_alliance,
    global_offensive_alliance,
    global_powerful_alliance,
    instance_by_name,
    k_dominating_set,
    k_tuple_dominating_set,
    validate_degrees,
)
from .spec import (
    is_alliance,
    is_fga_stable,
    one_minimality_guaranteed,
    is_dominating_set,
    is_minimal,
    is_minimal_dominating_set,
    is_one_minimal,
    neighbors_in,
    violating_processes,
)
from .turau import IN, OUT, WAIT, TurauMIS

__all__ = [
    "FGA",
    "COL",
    "SCR",
    "CANQ",
    "PTR",
    "resolve_node_function",
    "INSTANCES",
    "instance_by_name",
    "dominating_set",
    "k_dominating_set",
    "k_tuple_dominating_set",
    "global_offensive_alliance",
    "global_defensive_alliance",
    "global_powerful_alliance",
    "validate_degrees",
    "is_alliance",
    "is_one_minimal",
    "is_fga_stable",
    "one_minimality_guaranteed",
    "is_minimal",
    "is_dominating_set",
    "is_minimal_dominating_set",
    "neighbors_in",
    "violating_processes",
    "TurauMIS",
    "OUT",
    "WAIT",
    "IN",
]
