"""IR definitions of the alliance algorithms.

:func:`fga_rule_set` states Algorithm FGA declaratively; the macros of
Algorithm 3 become shared expression trees:

* ``#InAll(u)`` — a neighborhood count of alliance members;
* ``realScr(u)`` — ``sign(#InAll − threshold)`` with the threshold picked
  per process from the ``f``/``g`` parameter columns by (possibly
  overridden) membership;
* ``bestPtr(u)`` — an argmin-by-identifier over the closed neighborhood
  via the composite key ``id·n + v`` (unique ids ⇒ the min key decodes to
  the unique argmin process via ``mod n``);
* the ``∀v ∈ N[u]: ptr_v = u`` test of ``P_toQuit`` — a per-edge compare
  of the neighbor's pointer against the edge source.

The sequential-macro semantics of the actions (``upd(u)`` seeing values
``cmpVar(u)`` just computed, ``rule_Clr`` seeing ``col_u`` already
flipped) are reproduced by instantiating the macros with the overridden
membership/score expressions — all still over the frozen read columns,
exactly like the dict implementation's keyword overrides.

:func:`turau_rule_set` is the Turau-style MIS baseline: one enum column,
identifier tie-breaks as per-edge id comparisons.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import AlgorithmError
from ..core.kernel.schema import Schema, Var
from ..ir import (
    Assign,
    InputRuleSet,
    Rule,
    RuleSet,
    all_neighbors,
    any_neighbors,
    col,
    count_neighbors,
    gather,
    min_over_neighbors,
    minimum,
    neigh,
    nprocs,
    own,
    param,
    proc_index,
    sign,
    where,
)
from ..ir.kernelc import IRInputKernelProgram, IRKernelProgram
from .fga import CANQ, COL, PTR, SCR
from .turau import IN, MSTATE, OUT, WAIT

__all__ = [
    "fga_rule_set",
    "turau_rule_set",
    "FGAKernelProgram",
    "TurauKernelProgram",
]

_NO_KEY = np.iinfo(np.int64).max


def fga_rule_set(algorithm) -> InputRuleSet:
    """Algorithm FGA as an :class:`~repro.ir.rules.InputRuleSet`.

    Raises :class:`AlgorithmError` when the identifiers would overflow
    the composite ``bestPtr`` key (callers fall back to the dict
    backend, mirroring the handwritten port).
    """
    network = algorithm.network
    ids = tuple(network.ids)
    n = network.n
    if max(ids) >= _NO_KEY // (n + 1) or min(ids) < 0:
        raise AlgorithmError(
            "process identifiers too large for the kernel backend"
        )

    ids_p = param(ids, "ids")
    f_p = param(tuple(algorithm.f), "f")
    g_p = param(tuple(algorithm.g), "g")

    colv, scr, canq, ptr = col(COL), col(SCR), col(CANQ), col(PTR)
    # Composite argmin key: id·n + index.  Identifiers repeat across tiled
    # blocks, but neighborhoods never cross a block boundary, so the key
    # stays unambiguous; ``tile_check`` below refuses layouts where it
    # would overflow int64.
    own_key = ids_p * nprocs() + proc_index()

    # ``#InAll(u)``: alliance-member neighbors.
    in_all = count_neighbors(neigh(colv))

    def real_scr(col_vec):
        """``realScr(u)`` with membership given by ``col_vec``."""
        return sign(in_all - where(col_vec, g_p, f_p))

    def can_quit(col_vec):
        """``P_canQuit(u)`` with own membership given by ``col_vec``."""
        saturated = all_neighbors(neigh(scr) == 1)
        return col_vec & (in_all >= f_p) & saturated

    def best_ptr(scr_vec, canq_own):
        """``bestPtr(u)`` with own ``scr``/``canQ`` given by the overrides.

        Neighbors always contribute their *stored* ``canQ`` (the
        overrides are sequential-macro semantics local to ``u``).
        """
        best = min_over_neighbors(
            neigh(own_key), where=neigh(canq), default=_NO_KEY
        )
        if canq_own is not None:
            best = minimum(best, where(canq_own, own_key, _NO_KEY))
        pointer = where(best == _NO_KEY, -1, best % nprocs())
        return where(scr_vec <= 0, -1, pointer)

    # ``P_ICorrect`` from the single-source ``realScr``.
    real = real_scr(colv)
    target_col = where(ptr >= 0, gather(ptr, colv), False)
    scr_is_one = scr == 1
    icorrect = (real >= 0) & (
        (scr_is_one & (real == 1)) | (ptr < 0) | (scr_is_one & ~target_col)
    )

    # Guards; the host ANDs its cleanliness onto every rule (clean_gated).
    ptr_unanimous = all_neighbors(neigh(ptr) == own(proc_index())) & (
        ptr == proc_index()
    )
    can_quit_now = can_quit(colv)
    to_quit = can_quit_now & ptr_unanimous
    upd_ptr = ~to_quit & (ptr != best_ptr(scr, canq))
    stale = (scr != real) | (canq != can_quit_now)

    clr_scr = sign(in_all - f_p)  # realScr with col_u := false
    rules = [
        # col_u := false; upd(u) — upd sees the new membership
        # (P_canQuit needs col_u, so canQ := false).
        Rule("rule_Clr", icorrect & to_quit,
             [Assign(COL, False), Assign(SCR, clr_scr),
              Assign(CANQ, False), Assign(PTR, best_ptr(clr_scr, None))],
             clean_gated=True),
        # ptr_u := ⊥; cmpVar(u)
        Rule("rule_P1", icorrect & upd_ptr & (ptr >= 0),
             [Assign(PTR, -1), Assign(SCR, real),
              Assign(CANQ, can_quit_now)],
             clean_gated=True),
        # upd(u) = cmpVar(u); ptr := bestPtr(u) on the fresh values.
        Rule("rule_P2", icorrect & upd_ptr & (ptr < 0),
             [Assign(SCR, real), Assign(CANQ, can_quit_now),
              Assign(PTR, best_ptr(real, can_quit_now))],
             clean_gated=True),
        # cmpVar(u); if realScr(u) ≤ 0 then ptr := ⊥
        Rule("rule_Q", icorrect & ~to_quit & ~upd_ptr & stale,
             [Assign(SCR, real), Assign(CANQ, can_quit_now),
              Assign(PTR, -1, where=real <= 0)],
             clean_gated=True),
    ]

    max_id = max(ids)
    return InputRuleSet(
        "fga",
        network,
        Schema(Var.bool(COL), Var.int(SCR), Var.bool(CANQ),
               Var.opt_index(PTR)),
        rules,
        icorrect=icorrect,
        reset=colv & (ptr < 0) & canq & scr_is_one,
        reset_action=[Assign(COL, True), Assign(PTR, -1),
                      Assign(CANQ, True), Assign(SCR, 1)],
        tile_check=lambda total: max_id < _NO_KEY // (total + 1),
    )


#: Integer codes of the Turau membership enum (indices into (OUT, WAIT, IN)).
_OUT, _WAIT, _IN = 0, 1, 2


def turau_rule_set(algorithm) -> RuleSet:
    """The Turau-style MIS baseline as a :class:`~repro.ir.rules.RuleSet`."""
    network = algorithm.network
    ids_p = param(tuple(network.ids), "ids")
    state = col(MSTATE)
    edge_state = neigh(state)
    smaller_id = neigh(ids_p) < own(ids_p)

    has_in = any_neighbors(edge_state == _IN)
    smaller_wait = any_neighbors((edge_state == _WAIT) & smaller_id)
    smaller_in = any_neighbors((edge_state == _IN) & smaller_id)

    is_out = state == _OUT
    is_wait = state == _WAIT
    return RuleSet(
        "turau-mis",
        network,
        Schema(Var.enum(MSTATE, (OUT, WAIT, IN))),
        [
            Rule("rule_wait", is_out & ~has_in, [Assign(MSTATE, _WAIT)]),
            Rule("rule_retreat", is_wait & has_in, [Assign(MSTATE, _OUT)]),
            Rule("rule_enter", is_wait & ~has_in & ~smaller_wait,
                 [Assign(MSTATE, _IN)]),
            Rule("rule_leave", (state == _IN) & smaller_in,
                 [Assign(MSTATE, _OUT)]),
        ],
    )


class FGAKernelProgram(IRInputKernelProgram):
    """Generated kernel program of the paper's Algorithm FGA."""

    def __init__(self, algorithm):
        super().__init__(fga_rule_set(algorithm))


class TurauKernelProgram(IRKernelProgram):
    """Generated kernel program of the Turau-style MIS baseline."""

    def __init__(self, algorithm):
        super().__init__(turau_rule_set(algorithm))
