"""Kernel (struct-of-arrays) ports of the alliance algorithms.

:class:`FGAKernelProgram` is Algorithm FGA; :class:`TurauKernelProgram`
is the Turau-style MIS baseline (identifier tie-breaking as per-edge id
comparisons).  The FGA port:

Columns: ``col``/``canQ`` as bools, ``scr`` as int64 (−1/0/1), ``ptr`` as
int64 with ``−1`` encoding ⊥.  The macros of Algorithm 3 vectorize as:

* ``#InAll(u)`` — one segmented count of alliance-member neighbors;
* ``realScr(u)`` — ``sign(#InAll − threshold)`` with the threshold picked
  per process from ``f``/``g`` by (possibly overridden) membership;
* ``bestPtr(u)`` — an argmin-by-identifier over the closed neighborhood,
  done as a segmented min over the composite key ``id·n + v`` (unique
  ids ⇒ the min key decodes to the unique argmin process via ``mod n``);
* the ``∀v ∈ N[u]: ptr_v = u`` test of ``P_toQuit`` — one edge compare
  against the edge-source vector plus the own-pointer check.

The sequential-macro semantics of the actions (``upd(u)`` seeing values
``cmpVar(u)`` just computed, ``rule_Clr`` seeing ``col_u`` already
flipped) are reproduced by evaluating the overridden variants on the
frozen read columns, exactly like the dict implementation's keyword
overrides.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import AlgorithmError
from ..core.kernel.csr import CSRAdjacency
from ..core.kernel.programs import InputKernelProgram, KernelProgram
from ..core.kernel.schema import Schema, Var
from .fga import CANQ, COL, PTR, SCR
from .turau import IN, MSTATE, OUT, WAIT

__all__ = ["FGAKernelProgram", "TurauKernelProgram"]

_NO_KEY = np.iinfo(np.int64).max


class FGAKernelProgram(InputKernelProgram):
    """Vectorized guards/actions of the paper's Algorithm FGA."""

    __slots__ = ("csr", "f", "g", "ids", "_own_key", "schema", "rules")

    def __init__(self, algorithm):
        network = algorithm.network
        self.csr = CSRAdjacency(network)
        self.f = np.asarray(algorithm.f, dtype=np.int64)
        self.g = np.asarray(algorithm.g, dtype=np.int64)
        self.ids = np.asarray(network.ids, dtype=np.int64)
        n = network.n
        if int(self.ids.max()) >= _NO_KEY // (n + 1) or int(self.ids.min()) < 0:
            # The composite bestPtr key would overflow int64.
            raise AlgorithmError(
                "process identifiers too large for the kernel backend"
            )
        self._own_key = self.ids * n + np.arange(n, dtype=np.int64)
        self.schema = Schema(
            Var.bool(COL), Var.int(SCR), Var.bool(CANQ), Var.opt_index(PTR)
        )
        self.rules = algorithm.rule_names()

    def tiled(self, copies: int) -> "FGAKernelProgram | None":
        csr = self.csr.tile(copies)
        total = csr.n
        ids = np.tile(self.ids, copies)
        if int(ids.max()) >= _NO_KEY // (total + 1):
            return None  # composite bestPtr key would overflow int64
        prog = object.__new__(FGAKernelProgram)
        prog.csr = csr
        prog.f = np.tile(self.f, copies)
        prog.g = np.tile(self.g, copies)
        prog.ids = ids
        # Identifiers repeat across blocks, but neighborhoods never cross
        # a block boundary, so the argmin-by-id key stays unambiguous;
        # pointers in a batch are *global* process indices (the schema's
        # opt_index tiling offsets them per trial).
        prog._own_key = ids * total + np.arange(total, dtype=np.int64)
        prog.schema = self.schema
        prog.rules = self.rules
        return prog

    # ------------------------------------------------------------------
    # Macros
    # ------------------------------------------------------------------
    def _in_alliance(self, cols) -> np.ndarray:
        """``#InAll(u)`` for every ``u``."""
        return self.csr.count_neigh(self.csr.pull(cols[COL]))

    def _real_scr(self, in_all, col_vec) -> np.ndarray:
        """``realScr(u)`` with membership given by ``col_vec``."""
        threshold = np.where(col_vec, self.g, self.f)
        return np.sign(in_all - threshold)

    def _can_quit(self, cols, in_all, col_vec) -> np.ndarray:
        """``P_canQuit(u)`` with own membership given by ``col_vec``."""
        neigh_saturated = self.csr.all_neigh(self.csr.pull(cols[SCR]) == 1)
        return col_vec & (in_all >= self.f) & neigh_saturated

    def _best_ptr(self, cols, scr_vec, canq_own) -> np.ndarray:
        """``bestPtr(u)`` with own ``scr``/``canQ`` given by the overrides.

        Neighbors always contribute their *stored* ``canQ`` (the overrides
        are sequential-macro semantics local to ``u``).
        """
        csr, n = self.csr, self.csr.n
        best = csr.min_neigh(csr.pull(self._own_key), csr.pull(cols[CANQ]), _NO_KEY)
        best = np.minimum(best, np.where(canq_own, self._own_key, _NO_KEY))
        ptr = np.where(best == _NO_KEY, -1, best % n)
        return np.where(scr_vec <= 0, -1, ptr)

    def _ptr_unanimous(self, cols) -> np.ndarray:
        """``∀v ∈ N[u]: ptr_v = u`` (closed neighborhood)."""
        ptr = cols[PTR]
        neighbors_point_here = self.csr.all_neigh(
            self.csr.pull(ptr) == self.csr.edge_src
        )
        own_points_here = ptr == np.arange(self.csr.n, dtype=np.int64)
        return neighbors_point_here & own_points_here

    # ------------------------------------------------------------------
    # SDR input interface
    # ------------------------------------------------------------------
    def _icorrect(self, col, scr, ptr, real) -> np.ndarray:
        """``P_ICorrect`` from precomputed ``realScr`` (the single source)."""
        target_col = np.where(ptr >= 0, col[np.maximum(ptr, 0)], False)
        scr_is_one = scr == 1
        return (real >= 0) & (
            (scr_is_one & (real == 1)) | (ptr < 0) | (scr_is_one & ~target_col)
        )

    def icorrect_mask(self, cols) -> np.ndarray:
        col, scr, ptr = cols[COL], cols[SCR], cols[PTR]
        real = self._real_scr(self._in_alliance(cols), col)
        return self._icorrect(col, scr, ptr, real)

    def reset_mask(self, cols) -> np.ndarray:
        return cols[COL] & (cols[PTR] < 0) & cols[CANQ] & (cols[SCR] == 1)

    def apply_reset(self, idx, read, write) -> None:
        write[COL][idx] = True
        write[PTR][idx] = -1
        write[CANQ][idx] = True
        write[SCR][idx] = 1

    # ------------------------------------------------------------------
    # Guards and actions
    # ------------------------------------------------------------------
    def guard_masks(self, cols, clean=None) -> dict[str, np.ndarray]:
        return self.host_masks(cols, clean)[2]

    def host_masks(self, cols, clean):
        col, scr, canq, ptr = cols[COL], cols[SCR], cols[CANQ], cols[PTR]
        in_all = self._in_alliance(cols)
        real = self._real_scr(in_all, col)
        icorrect = self._icorrect(col, scr, ptr, real)

        gate = icorrect if clean is None else icorrect & clean
        can_quit = self._can_quit(cols, in_all, col)
        to_quit = can_quit & self._ptr_unanimous(cols)
        upd_ptr = ~to_quit & (ptr != self._best_ptr(cols, scr, canq))
        stale = (scr != real) | (canq != can_quit)
        masks = {
            "rule_Clr": gate & to_quit,
            "rule_P1": gate & upd_ptr & (ptr >= 0),
            "rule_P2": gate & upd_ptr & (ptr < 0),
            "rule_Q": gate & ~to_quit & ~upd_ptr & stale,
        }
        return icorrect, self.reset_mask(cols), masks

    def apply(self, rule, idx, read, write) -> None:
        col = read[COL]
        in_all = self._in_alliance(read)
        if rule == "rule_Clr":
            # col_u := false; upd(u) — upd sees the new membership.
            false_col = np.zeros(self.csr.n, dtype=np.bool_)
            scr_new = np.sign(in_all - self.f)  # realScr with col = false
            ptr_new = self._best_ptr(read, scr_new, false_col)
            write[COL][idx] = False
            write[SCR][idx] = scr_new[idx]
            write[CANQ][idx] = False  # P_canQuit needs col_u
            write[PTR][idx] = ptr_new[idx]
        elif rule == "rule_P1":
            # ptr_u := ⊥; cmpVar(u)
            write[PTR][idx] = -1
            write[SCR][idx] = self._real_scr(in_all, col)[idx]
            write[CANQ][idx] = self._can_quit(read, in_all, col)[idx]
        elif rule == "rule_P2":
            # upd(u) = cmpVar(u); ptr := bestPtr(u) on the fresh values.
            scr_new = self._real_scr(in_all, col)
            canq_new = self._can_quit(read, in_all, col)
            write[SCR][idx] = scr_new[idx]
            write[CANQ][idx] = canq_new[idx]
            write[PTR][idx] = self._best_ptr(read, scr_new, canq_new)[idx]
        elif rule == "rule_Q":
            # cmpVar(u); if realScr(u) ≤ 0 then ptr := ⊥
            scr_new = self._real_scr(in_all, col)
            write[SCR][idx] = scr_new[idx]
            write[CANQ][idx] = self._can_quit(read, in_all, col)[idx]
            negative = idx[scr_new[idx] <= 0]
            write[PTR][negative] = -1
        else:
            raise AlgorithmError(f"FGA kernel program: unknown rule {rule!r}")


#: Integer codes of the Turau membership enum (indices into (OUT, WAIT, IN)).
_OUT, _WAIT, _IN = 0, 1, 2


class TurauKernelProgram(KernelProgram):
    """Vectorized guards/actions of the Turau-style MIS baseline.

    One int8 enum column holds the three-valued membership state; the
    identifier tie-breaks become per-edge comparisons of the neighbor's
    id against the owner's, reduced with ``any`` over each neighborhood.
    """

    __slots__ = ("csr", "ids", "schema", "rules")

    def __init__(self, algorithm):
        network = algorithm.network
        self.csr = CSRAdjacency(network)
        self.ids = np.asarray(network.ids, dtype=np.int64)
        self.schema = Schema(Var.enum(MSTATE, (OUT, WAIT, IN)))
        self.rules = algorithm.rule_names()

    def tiled(self, copies: int) -> "TurauKernelProgram":
        prog = object.__new__(TurauKernelProgram)
        prog.csr = self.csr.tile(copies)
        prog.ids = np.tile(self.ids, copies)
        prog.schema = self.schema
        prog.rules = self.rules
        return prog

    # ------------------------------------------------------------------
    def guard_masks(self, cols) -> dict[str, np.ndarray]:
        csr = self.csr
        state = cols[MSTATE]
        edge_state = csr.pull(state)
        smaller_id = csr.pull(self.ids) < csr.own(self.ids)

        has_in = csr.any_neigh(edge_state == _IN)
        smaller_wait = csr.any_neigh((edge_state == _WAIT) & smaller_id)
        smaller_in = csr.any_neigh((edge_state == _IN) & smaller_id)

        is_out = state == _OUT
        is_wait = state == _WAIT
        return {
            "rule_wait": is_out & ~has_in,
            "rule_retreat": is_wait & has_in,
            "rule_enter": is_wait & ~has_in & ~smaller_wait,
            "rule_leave": (state == _IN) & smaller_in,
        }

    def apply(self, rule, idx, read, write) -> None:
        if rule == "rule_wait":
            write[MSTATE][idx] = _WAIT
        elif rule == "rule_retreat":
            write[MSTATE][idx] = _OUT
        elif rule == "rule_enter":
            write[MSTATE][idx] = _IN
        elif rule == "rule_leave":
            write[MSTATE][idx] = _OUT
        else:
            raise AlgorithmError(f"Turau kernel program: unknown rule {rule!r}")
