"""Baseline: Turau-style self-stabilizing maximal independent set / MDS.

The related-work discussion (paper, Section 6.3) cites Turau [44]: linear
self-stabilizing algorithms for independent and dominating sets under the
distributed unfair daemon with identifiers.  Since a maximal independent
set is a minimal dominating set, this classic three-state MIS algorithm is
the natural head-to-head baseline for the (1,0)-alliance instance of
``FGA ∘ SDR`` — experiment T10.

Reconstruction (no public artifact): each process holds
``s ∈ {OUT, WAIT, IN}`` and moves by the rules

* ``rule_wait``   — ``s = OUT``  and no neighbor is ``IN``  → ``s := WAIT``;
* ``rule_retreat``— ``s = WAIT`` and some neighbor is ``IN`` → ``s := OUT``;
* ``rule_enter``  — ``s = WAIT``, no neighbor ``IN``, and no ``WAIT``
  neighbor with a smaller identifier → ``s := IN``;
* ``rule_leave``  — ``s = IN`` and some ``IN`` neighbor has a smaller
  identifier → ``s := OUT``.

Terminal configurations are exactly the maximal independent sets (hence
minimal dominating sets); the identifier tie-breaking yields the linear
move behavior the benchmarks measure.
"""

from __future__ import annotations

from random import Random
from typing import Any

from ..core.algorithm import Algorithm
from ..core.configuration import Configuration
from ..core.graph import Network

__all__ = ["TurauMIS", "OUT", "WAIT", "IN"]

OUT = "OUT"
WAIT = "WAIT"
IN = "IN"

#: Variable name of the three-valued membership state.
MSTATE = "s"


class TurauMIS(Algorithm):
    """Self-stabilizing maximal independent set (minimal dominating set)."""

    name = "turau-mis"
    mutually_exclusive_rules = True

    def __init__(self, network: Network):
        super().__init__(network)

    # ------------------------------------------------------------------
    def _has_in_neighbor(self, cfg: Configuration, u: int) -> bool:
        return any(cfg[v][MSTATE] == IN for v in self.network.neighbors(u))

    def _smaller_wait_neighbor(self, cfg: Configuration, u: int) -> bool:
        my_id = self.network.id_of(u)
        return any(
            cfg[v][MSTATE] == WAIT and self.network.id_of(v) < my_id
            for v in self.network.neighbors(u)
        )

    def _smaller_in_neighbor(self, cfg: Configuration, u: int) -> bool:
        my_id = self.network.id_of(u)
        return any(
            cfg[v][MSTATE] == IN and self.network.id_of(v) < my_id
            for v in self.network.neighbors(u)
        )

    # ------------------------------------------------------------------
    def variables(self) -> tuple[str, ...]:
        return (MSTATE,)

    def rule_names(self) -> tuple[str, ...]:
        return ("rule_wait", "rule_retreat", "rule_enter", "rule_leave")

    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        state = cfg[u][MSTATE]
        if rule == "rule_wait":
            return state == OUT and not self._has_in_neighbor(cfg, u)
        if rule == "rule_retreat":
            return state == WAIT and self._has_in_neighbor(cfg, u)
        if rule == "rule_enter":
            return (
                state == WAIT
                and not self._has_in_neighbor(cfg, u)
                and not self._smaller_wait_neighbor(cfg, u)
            )
        if rule == "rule_leave":
            return state == IN and self._smaller_in_neighbor(cfg, u)
        self.check_rule(rule)
        return False

    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        if rule == "rule_wait":
            return {MSTATE: WAIT}
        if rule == "rule_retreat":
            return {MSTATE: OUT}
        if rule == "rule_enter":
            return {MSTATE: IN}
        if rule == "rule_leave":
            return {MSTATE: OUT}
        self.check_rule(rule)
        raise AssertionError("unreachable")

    def initial_state(self, u: int) -> dict[str, Any]:
        return {MSTATE: OUT}

    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        return {MSTATE: (OUT, WAIT, IN)[rng.randrange(3)]}

    def rule_set(self):
        """IR definition (see :mod:`repro.alliance.kernelized`)."""
        try:
            from .kernelized import turau_rule_set
        except ModuleNotFoundError as exc:
            if exc.name and exc.name.split(".")[0] == "numpy":
                return None  # numpy missing: dict backend only
            raise
        return turau_rule_set(self)

    # ------------------------------------------------------------------
    def members(self, cfg: Configuration) -> set[int]:
        """The computed independent / dominating set."""
        return {u for u in self.network.processes() if cfg[u][MSTATE] == IN}
