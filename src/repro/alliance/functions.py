"""The six classical (f,g)-alliance instances (paper, Section 6.1).

Each factory returns per-process ``(f, g)`` tuples for a given network:

1. dominating set               — (1, 0)-alliance;
2. k-dominating set             — (k, 0)-alliance;
3. k-tuple dominating set       — (k, k−1)-alliance;
4. global offensive alliance    — (⌈(δ_u+1)/2⌉, 0)-alliance;
5. global defensive alliance    — (1, ⌈(δ_u+1)/2⌉)-alliance;
6. global powerful alliance     — (⌈(δ_u+1)/2⌉, ⌈δ_u/2⌉)-alliance.

FGA additionally requires ``δ_u ≥ max(f(u), g(u))`` for every process,
which these factories check via :func:`validate_degrees` so infeasible
instances fail fast with a clear message.
"""

from __future__ import annotations

import math

from ..core.exceptions import AlgorithmError
from ..core.graph import Network

__all__ = [
    "validate_degrees",
    "dominating_set",
    "k_dominating_set",
    "k_tuple_dominating_set",
    "global_offensive_alliance",
    "global_defensive_alliance",
    "global_powerful_alliance",
    "INSTANCES",
    "instance_by_name",
]

FG = tuple[tuple[int, ...], tuple[int, ...]]


def validate_degrees(network: Network, f: tuple[int, ...], g: tuple[int, ...]) -> FG:
    """Ensure ``δ_u ≥ max(f(u), g(u))`` everywhere; return ``(f, g)``."""
    for u in network.processes():
        need = max(f[u], g[u])
        if network.degree(u) < need:
            raise AlgorithmError(
                f"instance infeasible: process {u} has degree {network.degree(u)} "
                f"< max(f, g) = {need}"
            )
    return f, g


def dominating_set(network: Network) -> FG:
    """(1, 0): every non-member has a member neighbor."""
    n = network.n
    return validate_degrees(network, (1,) * n, (0,) * n)


def k_dominating_set(network: Network, k: int = 2) -> FG:
    """(k, 0): every non-member has ≥ k member neighbors."""
    n = network.n
    return validate_degrees(network, (k,) * n, (0,) * n)


def k_tuple_dominating_set(network: Network, k: int = 2) -> FG:
    """(k, k−1): non-members need k member neighbors, members k−1."""
    n = network.n
    return validate_degrees(network, (k,) * n, (k - 1,) * n)


def _half_up(x: int) -> int:
    return math.ceil(x / 2)


def global_offensive_alliance(network: Network) -> FG:
    """(⌈(δ+1)/2⌉, 0): a majority of every non-member's closed
    neighborhood is in the alliance."""
    f = tuple(_half_up(network.degree(u) + 1) for u in network.processes())
    g = (0,) * network.n
    return validate_degrees(network, f, g)


def global_defensive_alliance(network: Network) -> FG:
    """(1, ⌈(δ+1)/2⌉): members can defend themselves with a majority."""
    f = (1,) * network.n
    g = tuple(_half_up(network.degree(u) + 1) for u in network.processes())
    return validate_degrees(network, f, g)


def global_powerful_alliance(network: Network) -> FG:
    """(⌈(δ+1)/2⌉, ⌈δ/2⌉): simultaneously offensive and defensive."""
    f = tuple(_half_up(network.degree(u) + 1) for u in network.processes())
    g = tuple(_half_up(network.degree(u)) for u in network.processes())
    return validate_degrees(network, f, g)


#: Registry used by the instance benchmarks (name → factory(network)).
INSTANCES = {
    "dominating-set": dominating_set,
    "2-dominating-set": lambda net: k_dominating_set(net, 2),
    "2-tuple-dominating-set": lambda net: k_tuple_dominating_set(net, 2),
    "global-offensive": global_offensive_alliance,
    "global-defensive": global_defensive_alliance,
    "global-powerful": global_powerful_alliance,
}


def instance_by_name(name: str, network: Network) -> FG:
    """Build a named instance's ``(f, g)`` for a network."""
    try:
        factory = INSTANCES[name]
    except KeyError:
        raise AlgorithmError(
            f"unknown alliance instance {name!r}; choose from {sorted(INSTANCES)}"
        ) from None
    return factory(network)
