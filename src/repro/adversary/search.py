"""Adversarial schedule search strategies and their daemon adapter.

Two column-tier searches drive the kernel engine toward worst-case
executions:

* :class:`GreedyAdversary` — 1-step lookahead: every enabled
  ``(process, rule)`` candidate is applied on a scratch buffer and the
  successor configurations are ranked by potential
  (:mod:`repro.adversary.potential`); the best candidate is scheduled.
* :class:`BeamAdversary` — width-W beam over bounded rollouts: branches
  are explored on the *live* :class:`~repro.core.kernel.engine.KernelRuntime`
  via :meth:`~repro.core.kernel.engine.KernelRuntime.snapshot` /
  :meth:`~repro.core.kernel.engine.KernelRuntime.restore`, scoring each
  partial plan by moves-spent-so-far plus successor potential, and the
  first move of the best plan is scheduled.

:class:`SearchDaemon` adapts a strategy into the daemon contract, so
``Simulator(daemon=...)``, the campaign engine, and trial keys work
unchanged.  On the kernel backend it reaches the runtime through the
simulator's lazy config view; on the dict backend it degrades to the
decode-tier scored heuristic (:class:`AdversarialDaemon`, folded in here
from ``repro.core.daemon`` — the old import path still works through a
deprecation shim).  Every selection is logged so
:mod:`repro.adversary.certificates` can emit a replayable certificate.

Searches are deterministic: they never consume the simulator's RNG, and
all ties break on one canonical ``(score, -process, rule)`` key — the
highest score wins, then the lowest process index, then the
lexicographically greatest rule name.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..core.configuration import Configuration
from ..core.daemon import Daemon
from ..core.exceptions import DaemonError
from ..reset.sdr import SDR_RULES
from .potential import Potential, default_potential

__all__ = [
    "SearchStrategy",
    "GreedyAdversary",
    "BeamAdversary",
    "ScoredStrategy",
    "SearchDaemon",
    "AdversarialDaemon",
    "delay_strategy",
    "make_search_daemon",
    "known_strategy",
    "STRATEGY_KINDS",
]

EnabledMap = Mapping[int, tuple[str, ...]]
Selection = dict[int, str]


def delay_strategy(cfg: Configuration, u: int, rule: str, step: int) -> float:
    """Scored heuristic: run input moves first, feedback/completion last.

    Stretches executions toward the move-complexity worst case: the
    daemon lets the input algorithm churn before letting resets make
    progress.  Backend-independent (reads only the configuration), so it
    doubles as the decode-tier fallback of every search strategy.
    """
    if rule not in SDR_RULES:
        return 3.0
    if rule in ("rule_RB", "rule_R"):
        return 2.0
    if rule == "rule_RF":
        return 1.0
    return 0.0  # rule_C


class AdversarialDaemon(Daemon):
    """Greedy scored adversary: activates the single best-scored move.

    The strategy callback receives ``(cfg, u, rule, step)`` and returns a
    score; the canonical ``(score, -u, rule)`` key picks the winner —
    highest score first, ties to the lowest process index, then the
    lexicographically greatest rule name.  This is the decode-tier
    fallback of :class:`SearchDaemon` and remains importable from
    :mod:`repro.core.daemon` through a deprecation shim.
    """

    name = "adversarial"

    def __init__(self, strategy: Callable[[Configuration, int, str, int], float]):
        self._strategy = strategy

    def select(self, cfg, enabled, rng, step):
        best_key: tuple[float, int, str] | None = None
        best: tuple[int, str] | None = None
        for u in sorted(enabled):
            for rule in enabled[u]:
                key = (self._strategy(cfg, u, rule, step), -u, rule)
                if best_key is None or key > best_key:
                    best_key = key
                    best = (u, rule)
        assert best is not None
        return {best[0]: best[1]}


# ======================================================================
# Column-tier strategies
# ======================================================================
class SearchStrategy:
    """One schedule-search policy over the kernel runtime.

    ``choose_columns`` picks a selection given the live runtime and its
    enabled map; ``score`` is the decode-tier scalar fallback used when
    no runtime is available (dict backend).  Strategies are
    deterministic and stateless across steps apart from cached scratch
    buffers, which ``reset`` drops between executions.
    """

    spec = "strategy"
    #: Whether ``choose_columns`` is implemented (False = scored-only).
    column_tier = True
    #: Kernel-program legitimacy mask of the measured run (an attribute
    #: name like ``"normal_mask"``, or a ``cols -> ndarray`` callable).
    #: The trial runner sets it so rollouts know the run *stops* at the
    #: first legitimate configuration — a plan crossing one is terminal
    #: and owes no further moves, no matter how enabled it looks.
    stop_mask: str | None = None

    def __init__(self, potential: Potential | None = None):
        self._potential = potential
        self._explicit = potential is not None
        self._scratch: dict[str, np.ndarray] | None = None
        self._stop_fn = None

    def reset(self) -> None:
        self._scratch = None
        self._stop_fn = None
        if not self._explicit:
            self._potential = None

    def choose_columns(self, kernel, enabled: EnabledMap, step: int) -> Selection:
        raise NotImplementedError

    def score(self, cfg, u: int, rule: str, step: int) -> float:
        return delay_strategy(cfg, u, rule, step)

    # ------------------------------------------------------------------
    def _materialize(self, kernel) -> tuple[Potential, dict[str, np.ndarray]]:
        if self._potential is None:
            self._potential = default_potential(kernel.program)
        if self._scratch is None:
            self._scratch = {
                name: np.empty_like(col) for name, col in kernel.read.items()
            }
        if self._stop_fn is None and self.stop_mask is not None:
            from ..probes.stabilization import resolve_mask

            self._stop_fn = resolve_mask(kernel.program, self.stop_mask)
        return self._potential, self._scratch

    def _stopped(self, cols) -> bool:
        """Whether ``cols`` is a configuration the measured run stops at."""
        return self._stop_fn is not None and bool(self._stop_fn(cols).all())

    @staticmethod
    def _candidate_selections(enabled: EnabledMap) -> list[Selection]:
        """Enumerate candidate selections: singles plus cohort macros.

        A distributed daemon may activate *any* non-empty subset, and
        the worst executions are not always sequential: simultaneous
        activations of a whole cohort can regenerate disorder that a
        lone move would resolve (the exhaustive single-move optimum on
        small rings is in fact *below* what random distributed
        schedules reach).  Enumerating all ``2^|enabled|`` subsets is
        hopeless, so candidates are every single move plus structured
        macros: for each rule, the full cohort of processes with that
        rule enabled, its even/odd halves (staggered sub-waves), and
        the fully synchronous selection.
        """
        singles: list[Selection] = [
            {u: rule} for u in sorted(enabled) for rule in enabled[u]
        ]
        cohorts: dict[str, list[int]] = {}
        for u in sorted(enabled):
            for rule in enabled[u]:
                cohorts.setdefault(rule, []).append(u)
        seen = {tuple(sorted(sel.items())) for sel in singles}
        macros: list[Selection] = []

        def add(sel: Selection) -> None:
            if not sel:
                return
            key = tuple(sorted(sel.items()))
            if key not in seen:
                seen.add(key)
                macros.append(sel)

        for rule, members in sorted(cohorts.items()):
            add({u: rule for u in members})
            add({u: rule for u in members[0::2]})
            add({u: rule for u in members[1::2]})
        add({u: enabled[u][0] for u in sorted(enabled)})
        return singles + macros

    def _apply_scratch(self, kernel, sel: Selection,
                       scratch: dict[str, np.ndarray]) -> None:
        """Apply ``sel`` on the scratch buffer (read columns untouched)."""
        read, program = kernel.read, kernel.program
        for name, col in read.items():
            scratch[name][:] = col
        by_rule: dict[str, list[int]] = {}
        for u, rule in sel.items():
            by_rule.setdefault(rule, []).append(u)
        for rule, members in sorted(by_rule.items()):
            idx = np.asarray(sorted(members), dtype=np.int64)
            program.apply(rule, idx, read, scratch)

    def _rank_candidates(self, kernel, enabled: EnabledMap):
        """Score every candidate selection by moves-spent plus potential.

        Each candidate is applied alone on the scratch buffer and scored
        ``len(selection) + potential(successor)`` — the moves the step
        spends plus an estimate of the moves the successor still owes.
        A successor the measured run stops at (:attr:`stop_mask`) owes
        nothing, whatever the potential says.  Returns
        ``[(score, selection), ...]`` sorted descending by score; ties
        break on the canonical serialized selection (ascending), so the
        ranking is deterministic.
        """
        potential, scratch = self._materialize(kernel)
        program = kernel.program
        ranked = []
        for sel in self._candidate_selections(enabled):
            self._apply_scratch(kernel, sel, scratch)
            pot = (0.0 if self._stopped(scratch)
                   else potential.score(scratch, program))
            ranked.append((float(len(sel)) + pot, sel))
        ranked.sort(key=lambda t: (-t[0], tuple(sorted(t[1].items()))))
        return ranked

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec!r})"


class GreedyAdversary(SearchStrategy):
    """1-step lookahead: schedule the candidate whose step scores best."""

    spec = "greedy"

    def choose_columns(self, kernel, enabled, step):
        _, sel = self._rank_candidates(kernel, enabled)[0]
        return dict(sel)


class BeamAdversary(SearchStrategy):
    """Width-W beam over bounded rollouts of the live kernel runtime.

    Rollouts branch off :meth:`KernelRuntime.snapshot`: each beam state
    is a snapshot plus the plan's first move, scored by moves spent so
    far plus the successor potential.  Per depth, each surviving state
    expands its ``branch`` best candidates (ranked by the same 1-step
    lookahead as :class:`GreedyAdversary`); after ``horizon`` plies the
    first move of the best plan is scheduled and the runtime is restored
    untouched.  Terminal rollout states persist in the beam with their
    accumulated score, so a plan that ends the execution early is only
    chosen if nothing longer-lived outscores it.
    """

    spec = "beam"

    def __init__(self, width: int = 3, horizon: int = 3, branch: int = 6,
                 potential: Potential | None = None):
        if width < 1 or horizon < 1 or branch < 1:
            raise DaemonError(
                f"beam parameters must be >= 1, got width={width} "
                f"horizon={horizon} branch={branch}"
            )
        super().__init__(potential)
        self.width = width
        self.horizon = horizon
        self.branch = branch
        self.spec = f"beam-{width}x{horizon}"

    def choose_columns(self, kernel, enabled, step):
        potential, _ = self._materialize(kernel)
        program = kernel.program
        base = kernel.snapshot()
        try:
            # Depth 1: every candidate from the live configuration.
            states = []  # (total score, moves in plan, first selection, snap, enabled)
            for _score, sel in self._rank_candidates(kernel, enabled)[: self.branch]:
                kernel.restore(base)
                kernel.apply(sel)
                stopped = self._stopped(kernel.read)
                em = {} if stopped else dict(kernel.enabled_map())
                pot = 0.0 if not em else potential.score(kernel.read, program)
                states.append((len(sel) + pot, len(sel), sel,
                               kernel.snapshot(), em))
            # Stable sort on the score alone: ties keep the canonical
            # candidate ranking, so the whole search stays deterministic.
            states.sort(key=lambda s: s[0], reverse=True)
            for _depth in range(1, self.horizon):
                states = states[: self.width]
                if all(not s[4] for s in states):
                    break
                nxt = []
                for total, moves, first, snap, em in states:
                    if not em:
                        nxt.append((total, moves, first, snap, em))
                        continue
                    kernel.restore(snap)
                    ranked = self._rank_candidates(kernel, em)[: self.branch]
                    for _score, sel in ranked:
                        kernel.restore(snap)
                        kernel.apply(sel)
                        stopped = self._stopped(kernel.read)
                        em2 = {} if stopped else dict(kernel.enabled_map())
                        pot = (0.0 if not em2
                               else potential.score(kernel.read, program))
                        nxt.append((moves + len(sel) + pot, moves + len(sel),
                                    first, kernel.snapshot(), em2))
                nxt.sort(key=lambda s: s[0], reverse=True)
                states = nxt
        finally:
            kernel.restore(base)
        return dict(states[0][2])


class ScoredStrategy(SearchStrategy):
    """A pure scored heuristic wrapped as a strategy (no column tier).

    Identical on every backend: the score function only reads the
    decoded configuration, so ``adversarial:delay`` produces the same
    schedule on dict, kernel, and stepped-kernel executions.
    """

    column_tier = False

    def __init__(self, score_fn: Callable[[Configuration, int, str, int], float],
                 spec: str = "delay"):
        super().__init__()
        self._score_fn = score_fn
        self.spec = spec

    def score(self, cfg, u, rule, step):
        return self._score_fn(cfg, u, rule, step)


# ======================================================================
# Daemon adapter
# ======================================================================
class SearchDaemon(Daemon):
    """A :class:`SearchStrategy` as a zoo daemon.

    On the kernel backend the simulator hands daemons a lazy config
    view; the adapter reaches through it to the live
    :class:`~repro.core.kernel.engine.KernelRuntime` and runs the
    column-tier search without decoding anything.  On the dict backend
    (or for scored-only strategies) it falls back to the decode-tier
    :class:`AdversarialDaemon` with the strategy's score function.

    Every returned selection is appended to :attr:`log` (cleared by
    ``reset``, which the simulator calls once per execution), so a
    finished run can be packaged into a replayable certificate by
    :func:`repro.adversary.certificates.certificate_from_daemon`.
    """

    name = "adversarial"

    def __init__(self, strategy: SearchStrategy):
        self.strategy = strategy
        self.spec = f"adversarial:{strategy.spec}"
        self.log: list[Selection] = []
        self._fallback = AdversarialDaemon(strategy.score)

    def reset(self) -> None:
        self.log.clear()
        self.strategy.reset()

    def select(self, cfg, enabled, rng, step):
        kernel = None
        if self.strategy.column_tier:
            sim = getattr(cfg, "_sim", None)
            kernel = getattr(sim, "_kernel", None)
        if kernel is not None:
            selection = self.strategy.choose_columns(kernel, enabled, step)
        else:
            selection = self._fallback.select(cfg, enabled, rng, step)
        self.log.append(dict(selection))
        return selection

    def __repr__(self) -> str:
        return f"SearchDaemon({self.spec!r})"


# ======================================================================
# Registry
# ======================================================================
#: Strategy families ``make_search_daemon`` accepts.  ``beam`` takes
#: optional ``-WIDTH``, ``-WIDTHxHORIZON``, or ``-WIDTHxHORIZONxBRANCH``
#: suffixes (e.g. ``beam-2x2``).
STRATEGY_KINDS = ("greedy", "beam", "delay")


def _parse_strategy(spec: str | None) -> SearchStrategy:
    spec = (spec or "greedy").strip()
    if spec == "greedy":
        return GreedyAdversary()
    if spec == "delay":
        return ScoredStrategy(delay_strategy)
    if spec == "beam" or spec.startswith("beam-"):
        if spec == "beam":
            return BeamAdversary()
        try:
            dims = [int(part) for part in spec[len("beam-"):].split("x")]
        except ValueError:
            dims = []
        if not 1 <= len(dims) <= 3:
            raise DaemonError(
                f"bad beam spec {spec!r}; use beam, beam-W, beam-WxH, "
                "or beam-WxHxB (e.g. beam-2x2)"
            )
        return BeamAdversary(*dims)
    raise DaemonError(
        f"unknown adversary strategy {spec!r}; choose from "
        f"{list(STRATEGY_KINDS)}"
    )


def known_strategy(spec: str | None) -> bool:
    """Whether ``spec`` parses to a registered search strategy."""
    try:
        _parse_strategy(spec)
    except DaemonError:
        return False
    return True


def make_search_daemon(spec: str | None = None, network=None) -> SearchDaemon:
    """Instantiate ``adversarial:<spec>`` (default strategy: greedy).

    ``network`` is accepted for signature compatibility with
    :func:`repro.core.daemon.make_daemon`; searches read topology from
    the kernel program's CSR adjacency instead.
    """
    return SearchDaemon(_parse_strategy(spec))
