"""Adversarial schedule search over the kernel engine.

The daemon zoo (:mod:`repro.core.daemon`) samples the *friendly* part of
the distributed unfair daemon's schedule space: every zoo daemon is
stochastic or fair.  The paper's complexity claims, however, are
worst-case bounds quantified over **all** unfair schedules — ``3n``
rounds / ``O(D·n²)`` moves for ``U∘SDR`` (Theorems 6–7) and ``8n+4``
rounds for ``FGA∘SDR`` (Theorem 14).  This package *searches* for
move-maximizing schedules so those formulas become empirically
tightened curves instead of unexercised upper bounds:

* :mod:`repro.adversary.potential` — per-algorithm potential functions
  (reset-distance mass, unison skew, FGA election churn, enabled-moves
  preservation) evaluated directly on the kernel's columns;
* :mod:`repro.adversary.search` — :class:`GreedyAdversary` (1-step
  lookahead over scratch buffers) and :class:`BeamAdversary` (width-W
  beam over :meth:`KernelRuntime.snapshot` rollouts), adapted into the
  daemon contract by :class:`SearchDaemon`;
* :mod:`repro.adversary.certificates` — every search emits a replayable
  schedule certificate that :class:`~repro.core.daemon.ScriptedDaemon`
  re-executes byte-identically on the dict backend.

Searched schedules are still *legal* unfair-daemon executions (every
step activates a non-empty subset of the enabled processes), so every
bound in :mod:`repro.analysis.bounds` must hold on them — CI asserts
exactly that.
"""

from .certificates import (
    CertificateError,
    ReplayReport,
    ScheduleCertificate,
    certificate_from_daemon,
    config_digest,
    dump_certificate,
    load_certificate,
    loads_certificate,
    replay_certificate,
    verify_certificate,
    write_certificate,
)
from .potential import (
    POTENTIAL_KINDS,
    EnabledMoves,
    FgaElectionChurn,
    Potential,
    ResetDistanceMass,
    UnisonSkew,
    WeightedPotential,
    default_potential,
    make_potential,
)
from .search import (
    STRATEGY_KINDS,
    AdversarialDaemon,
    BeamAdversary,
    GreedyAdversary,
    ScoredStrategy,
    SearchDaemon,
    SearchStrategy,
    delay_strategy,
    known_strategy,
    make_search_daemon,
)

__all__ = [
    # potentials
    "Potential",
    "EnabledMoves",
    "ResetDistanceMass",
    "UnisonSkew",
    "FgaElectionChurn",
    "WeightedPotential",
    "default_potential",
    "make_potential",
    "POTENTIAL_KINDS",
    # search
    "SearchStrategy",
    "GreedyAdversary",
    "BeamAdversary",
    "ScoredStrategy",
    "SearchDaemon",
    "AdversarialDaemon",
    "delay_strategy",
    "make_search_daemon",
    "known_strategy",
    "STRATEGY_KINDS",
    # certificates
    "ScheduleCertificate",
    "ReplayReport",
    "CertificateError",
    "config_digest",
    "certificate_from_daemon",
    "write_certificate",
    "dump_certificate",
    "load_certificate",
    "loads_certificate",
    "replay_certificate",
    "verify_certificate",
]
