"""Potential functions: how "far from done" a configuration is.

The adversarial searches in :mod:`repro.adversary.search` rank candidate
moves by the *successor* configuration's potential — a scalar that is
large while the execution still owes many moves and shrinks as it
approaches a legitimate configuration.  Each potential is a vectorized
column function: it scores a ``{variable: ndarray}`` column mapping (the
kernel's read buffer, a scratch successor buffer, or a
:class:`~repro.probes.view.ColumnView`'s ``cols``) directly, without
decoding a :class:`~repro.core.configuration.Configuration`.

The potentials mirror the quantities the paper's proofs charge moves
against:

* :class:`EnabledMoves` — the generic "enabled moves preserved"
  heuristic: count of enabled ``(process, rule)`` pairs.  Keeping this
  large delays termination regardless of the algorithm.
* :class:`ResetDistanceMass` — SDR work in flight: broadcast/feedback
  statuses plus normalized reset distances (Corollary 4 charges up to
  ``3n+3`` moves per process to the reset waves).
* :class:`UnisonSkew` — clock disorder of the unison layer: the number
  of neighbor pairs with unequal clocks.  Theorem 6's ``O(D·n²)`` move
  bound is driven by how long clocks stay incoherent.
* :class:`FgaElectionChurn` — pending alliance elections: granted
  pointers and quit requests (Lemma 25 charges ``8δΔ+18δ+24`` moves per
  process to election churn).

:func:`default_potential` inspects a kernel program's schema and
combines the applicable terms; the searches use it when no explicit
potential is given.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..alliance.fga import CANQ, PTR
from ..core.exceptions import DaemonError
from ..reset.sdr import DIST, RB, RF, ST, STATUSES
from ..unison.unison import CLOCK

__all__ = [
    "Potential",
    "EnabledMoves",
    "ResetDistanceMass",
    "UnisonSkew",
    "FgaElectionChurn",
    "WeightedPotential",
    "default_potential",
    "make_potential",
    "POTENTIAL_KINDS",
]

Columns = Mapping[str, np.ndarray]

#: Schema codes of the SDR statuses (enum columns store the index into
#: the declared value tuple).
_RB_CODE = STATUSES.index(RB)
_RF_CODE = STATUSES.index(RF)


class Potential:
    """Scalar score of a configuration given as columns (higher = farther)."""

    name = "potential"

    def score(self, cols: Columns, program) -> float:
        raise NotImplementedError

    def __call__(self, view) -> float:
        """Convenience: evaluate on a :class:`~repro.probes.view.ColumnView`."""
        return self.score(view.cols, view.program)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class EnabledMoves(Potential):
    """Count of enabled ``(process, rule)`` pairs — the generic heuristic.

    A schedule that keeps many moves enabled has not spent the
    execution's capacity; preferring successors with a large enabled set
    is the algorithm-agnostic way to prolong runs.
    """

    name = "enabled"

    def score(self, cols: Columns, program) -> float:
        total = 0
        for mask in program.guard_masks(cols).values():
            if mask is not None:
                total += int(np.count_nonzero(mask))
        return float(total)


class ResetDistanceMass(Potential):
    """SDR reset work in flight: statuses plus normalized distances.

    Broadcast (``RB``) processes still owe a feedback and a completion
    move, feedback (``RF``) ones a completion move; the distance term
    (normalized by ``n`` so it never outweighs a whole move) prefers
    deep reset trees, which take more rounds to collapse.
    """

    name = "reset-mass"

    def score(self, cols: Columns, program) -> float:
        st = cols.get(ST)
        if st is None:
            return 0.0
        rb = st == _RB_CODE
        rf = st == _RF_CODE
        mass = 3.0 * np.count_nonzero(rb) + 2.0 * np.count_nonzero(rf)
        d = cols.get(DIST)
        if d is not None:
            active = rb | rf
            if active.any():
                n = max(int(st.shape[0]), 1)
                mass += float(np.clip(d[active], 0, n).sum()) / n
        return float(mass)


class UnisonSkew(Potential):
    """Clock disorder of the unison layer: unequal neighbor pairs.

    Counts directed edge slots whose endpoint clocks differ, halved
    (each undirected edge contributes twice).  A coherent wave has zero
    skew; the adversary prefers successors that keep clocks ragged,
    which is exactly what drives Theorem 6's ``O(D·n²)`` move bound.
    """

    name = "unison-skew"

    def score(self, cols: Columns, program) -> float:
        c = cols.get(CLOCK)
        csr = getattr(program, "csr", None)
        if c is None or csr is None:
            return 0.0
        return float(np.count_nonzero(csr.pull(c) != csr.own(c))) / 2.0


class FgaElectionChurn(Potential):
    """Pending FGA alliance elections: quit requests and granted pointers."""

    name = "fga-churn"

    def score(self, cols: Columns, program) -> float:
        total = 0.0
        canq = cols.get(CANQ)
        if canq is not None:
            total += 2.0 * np.count_nonzero(canq)
        ptr = cols.get(PTR)
        if ptr is not None:
            total += float(np.count_nonzero(ptr >= 0))
        return total


class WeightedPotential(Potential):
    """Weighted sum of component potentials."""

    name = "weighted"

    def __init__(self, terms: Sequence[tuple[float, Potential]]):
        self.terms = tuple(terms)

    def score(self, cols: Columns, program) -> float:
        return sum(w * p.score(cols, program) for w, p in self.terms)

    def __repr__(self) -> str:
        inner = ", ".join(f"{w:g}*{p.name}" for w, p in self.terms)
        return f"WeightedPotential({inner})"


def default_potential(program) -> WeightedPotential:
    """Combine the potentials applicable to ``program``'s schema.

    The enabled-moves term dominates (a lost enabled pair is a move the
    execution can never spend); the algorithm-specific terms break ties
    between successors with equally large enabled sets.
    """
    names = {var.name for var in program.schema.vars}
    terms: list[tuple[float, Potential]] = [(4.0, EnabledMoves())]
    if ST in names:
        terms.append((1.0, ResetDistanceMass()))
    if CLOCK in names:
        terms.append((1.0, UnisonSkew()))
    if CANQ in names:
        terms.append((1.0, FgaElectionChurn()))
    return WeightedPotential(terms)


_POTENTIALS = {
    "enabled": EnabledMoves,
    "reset-mass": ResetDistanceMass,
    "unison-skew": UnisonSkew,
    "fga-churn": FgaElectionChurn,
}

#: Potential names :func:`make_potential` accepts.
POTENTIAL_KINDS = tuple(sorted(_POTENTIALS))


def make_potential(name: str) -> Potential:
    """Instantiate a registered potential by name."""
    try:
        return _POTENTIALS[name]()
    except KeyError:
        raise DaemonError(
            f"unknown potential {name!r}; choose from {sorted(_POTENTIALS)}"
        ) from None
