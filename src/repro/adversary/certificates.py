"""Replayable schedule certificates: worst schedules as artifacts.

A number ("the beam search found 412 moves") is not evidence; a
*schedule* is.  Every adversarial search emits a certificate — the exact
sequence of selections, the seed, and content hashes of the initial and
final configurations — serialized as JSONL so CI can archive it and
anyone can replay it.  Replay drives
:class:`~repro.core.daemon.ScriptedDaemon` on a fresh simulator (dict
backend by default — the reference interpreter, sharing no code with the
kernel that found the schedule) and must reproduce the same moves,
rounds, steps, and final configuration hash; any divergence raises.

File format: line 1 is a header object (version, algorithm, strategy,
seed, n, hashes, totals), every following line is one step's selection
as ``{"step": i, "select": [[process, rule], ...]}`` with processes
ascending.  The serialization is canonical (sorted keys, fixed
separators), so two equal certificates are byte-identical files.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.configuration import Configuration
from ..core.daemon import ScriptedDaemon

__all__ = [
    "CERT_VERSION",
    "CertificateError",
    "ScheduleCertificate",
    "ReplayReport",
    "config_digest",
    "certificate_from_daemon",
    "write_certificate",
    "dump_certificate",
    "load_certificate",
    "loads_certificate",
    "replay_certificate",
    "verify_certificate",
]

CERT_VERSION = 1

_JSON = dict(sort_keys=True, separators=(",", ":"))


class CertificateError(Exception):
    """A certificate failed to parse, replay, or verify."""


def config_digest(cfg: Configuration) -> str:
    """Content hash of a configuration (canonical JSON, sha256).

    Per-process states serialize as sorted ``[variable, value]`` pairs;
    all state values are plain JSON scalars (ints, bools, enum strings,
    ``None``) by the schema contract, so the digest is stable across
    backends and Python versions.
    """
    payload = [sorted(state.items()) for state in cfg]
    blob = json.dumps(payload, **_JSON).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class ScheduleCertificate:
    """One found schedule, replayable from the initial configuration."""

    algorithm: str
    strategy: str
    seed: int
    n: int
    initial_hash: str
    final_hash: str
    steps: int
    moves: int
    rounds: int
    selections: list[dict[int, str]]
    meta: dict = field(default_factory=dict)
    version: int = CERT_VERSION

    def header(self) -> dict:
        return {
            "version": self.version,
            "algorithm": self.algorithm,
            "strategy": self.strategy,
            "seed": self.seed,
            "n": self.n,
            "initial_hash": self.initial_hash,
            "final_hash": self.final_hash,
            "steps": self.steps,
            "moves": self.moves,
            "rounds": self.rounds,
            "meta": self.meta,
        }

    def digest(self) -> str:
        """Content hash of the whole certificate (header + schedule)."""
        return hashlib.sha256(dump_certificate(self).encode()).hexdigest()


@dataclass
class ReplayReport:
    """Outcome of re-executing a certificate's schedule."""

    backend: str
    steps: int
    moves: int
    rounds: int
    final_hash: str
    ok: bool


def certificate_from_daemon(
    daemon,
    *,
    algorithm: str,
    seed: int,
    initial: Configuration,
    final: Configuration,
    rounds: int,
    meta: Mapping | None = None,
) -> ScheduleCertificate:
    """Package a finished :class:`~repro.adversary.search.SearchDaemon` run.

    ``daemon.log`` holds the selections in execution order; ``initial``
    must be the configuration the run started from (the simulator copies
    its input, so the caller's original is unchanged and usable here).
    """
    selections = [dict(sel) for sel in daemon.log]
    return ScheduleCertificate(
        algorithm=algorithm,
        strategy=getattr(daemon, "spec", getattr(daemon, "name", "adversarial")),
        seed=seed,
        n=len(initial),
        initial_hash=config_digest(initial),
        final_hash=config_digest(final),
        steps=len(selections),
        moves=sum(len(sel) for sel in selections),
        rounds=rounds,
        selections=selections,
        meta=dict(meta or {}),
    )


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def dump_certificate(cert: ScheduleCertificate) -> str:
    """Canonical JSONL text of a certificate."""
    out = io.StringIO()
    out.write(json.dumps(cert.header(), **_JSON))
    out.write("\n")
    for i, sel in enumerate(cert.selections):
        row = [[int(u), sel[u]] for u in sorted(sel)]
        out.write(json.dumps({"step": i, "select": row}, **_JSON))
        out.write("\n")
    return out.getvalue()


def write_certificate(cert: ScheduleCertificate, path) -> None:
    with open(path, "w") as fh:
        fh.write(dump_certificate(cert))


def loads_certificate(text: str) -> ScheduleCertificate:
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise CertificateError("empty certificate")
    try:
        header = json.loads(lines[0])
        version = header["version"]
        if version != CERT_VERSION:
            raise CertificateError(f"unsupported certificate version {version}")
        selections: list[dict[int, str]] = []
        for i, line in enumerate(lines[1:]):
            row = json.loads(line)
            if row["step"] != i:
                raise CertificateError(
                    f"certificate steps out of order: expected {i}, "
                    f"got {row['step']}"
                )
            selections.append({int(u): rule for u, rule in row["select"]})
        cert = ScheduleCertificate(
            algorithm=header["algorithm"],
            strategy=header["strategy"],
            seed=header["seed"],
            n=header["n"],
            initial_hash=header["initial_hash"],
            final_hash=header["final_hash"],
            steps=header["steps"],
            moves=header["moves"],
            rounds=header["rounds"],
            selections=selections,
            meta=header.get("meta", {}),
            version=version,
        )
    except CertificateError:
        raise
    except (KeyError, ValueError, TypeError) as exc:
        raise CertificateError(f"malformed certificate: {exc}") from None
    if cert.steps != len(cert.selections):
        raise CertificateError(
            f"header claims {cert.steps} steps but file has "
            f"{len(cert.selections)} selections"
        )
    return cert


def load_certificate(path) -> ScheduleCertificate:
    with open(path) as fh:
        return loads_certificate(fh.read())


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def replay_certificate(
    cert: ScheduleCertificate,
    algorithm,
    config: Configuration,
    backend: str = "dict",
) -> ReplayReport:
    """Re-execute a certificate's schedule on a fresh simulator.

    ``algorithm`` is a live algorithm instance over the same topology
    and ``config`` the initial configuration (its hash is checked
    against the certificate before anything runs).  The schedule is fed
    through :class:`~repro.core.daemon.ScriptedDaemon`, which raises if
    the certificate ever activates a disabled move — the replay cannot
    silently drift.
    """
    from ..core.simulator import Simulator

    if config_digest(config) != cert.initial_hash:
        raise CertificateError(
            "initial configuration does not match the certificate "
            f"(expected {cert.initial_hash[:12]}…)"
        )
    sim = Simulator(
        algorithm,
        ScriptedDaemon([dict(sel) for sel in cert.selections]),
        config=config,
        seed=cert.seed,
        backend=backend,
    )
    result = sim.run(max_steps=cert.steps)
    final_hash = config_digest(sim.cfg)
    ok = (
        result.steps == cert.steps
        and result.moves == cert.moves
        and sim.rounds.completed == cert.rounds
        and final_hash == cert.final_hash
    )
    return ReplayReport(
        backend=backend,
        steps=result.steps,
        moves=result.moves,
        rounds=sim.rounds.completed,
        final_hash=final_hash,
        ok=ok,
    )


def verify_certificate(
    cert: ScheduleCertificate,
    algorithm,
    config: Configuration,
    backend: str = "dict",
) -> ReplayReport:
    """Replay and raise :class:`CertificateError` on any divergence."""
    report = replay_certificate(cert, algorithm, config, backend=backend)
    if not report.ok:
        raise CertificateError(
            f"certificate replay diverged on the {backend} backend: "
            f"steps {report.steps}/{cert.steps}, "
            f"moves {report.moves}/{cert.moves}, "
            f"rounds {report.rounds}/{cert.rounds}, "
            f"final {report.final_hash[:12]}…/{cert.final_hash[:12]}…"
        )
    return report
