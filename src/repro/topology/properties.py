"""Graph-theoretic properties used by the algorithms' parameter choices.

The unison baselines depend on two structural quantities of the network
(Boulinier et al. [11]):

* ``T_G`` — the length of the longest *chordless* cycle (hole), which lower
  bounds the reset-tail parameter ``α ≥ T_G − 2``;
* ``C_G`` — the *cyclomatic characteristic*, which the clock period must
  exceed (``K > C_G``).

``T_G`` is computed exactly via :func:`networkx.chordless_cycles` (fine at
benchmark scale).  ``C_G`` is the min over spanning trees of the maximum
fundamental-cycle length — expensive in general, so we expose a safe upper
bound (:func:`cyclomatic_characteristic_upper_bound`) alongside an exact
small-graph search.  Parameter helpers pick conservative values: any
``α ≥ n − 2`` and ``K ≥ n + 1`` satisfy the requirements because
``T_G ≤ n`` and ``C_G ≤ n``.
"""

from __future__ import annotations

import itertools

import networkx as nx

from ..core.graph import Network

__all__ = [
    "longest_chordless_cycle",
    "cyclomatic_characteristic_upper_bound",
    "cyclomatic_characteristic_exact",
    "safe_unison_parameters",
]


def _as_graph(network: Network | nx.Graph) -> nx.Graph:
    if isinstance(network, Network):
        return network.to_networkx()
    return network


def longest_chordless_cycle(network: Network | nx.Graph) -> int:
    """Length ``T_G`` of the longest chordless cycle; 2 for acyclic graphs.

    Boulinier et al. define ``T_G = 2`` on trees so that ``α ≥ T_G − 2 = 0``
    remains meaningful; we follow that convention.
    """
    graph = _as_graph(network)
    longest = 2
    for cycle in nx.chordless_cycles(graph):
        longest = max(longest, len(cycle))
    return longest


def cyclomatic_characteristic_upper_bound(network: Network | nx.Graph) -> int:
    """Cheap upper bound on ``C_G``.

    ``C_G`` is bounded by the maximum fundamental-cycle length of *any*
    spanning tree; we use a BFS tree from an arbitrary root, whose
    fundamental cycles have length at most ``2·depth + 1 ≤ 2D + 1``.  For
    trees (no cycles) the convention is ``C_G = 2``.
    """
    graph = _as_graph(network)
    if graph.number_of_edges() < graph.number_of_nodes():
        return 2  # tree (connected, m = n-1): no fundamental cycles
    root = next(iter(graph.nodes))
    depth = nx.single_source_shortest_path_length(graph, root)
    tree_edges = set()
    for u, v in nx.bfs_edges(graph, root):
        tree_edges.add(frozenset((u, v)))
    worst = 2
    for u, v in graph.edges():
        if frozenset((u, v)) in tree_edges:
            continue
        worst = max(worst, depth[u] + depth[v] + 1)
    return worst


def cyclomatic_characteristic_exact(network: Network | nx.Graph, max_n: int = 10) -> int:
    """Exact ``C_G`` by brute force over spanning trees (tiny graphs only).

    ``C_G = min_T max_{e ∉ T} |fundamental cycle of e in T|``, minimized
    over all spanning trees ``T``.  Exponential; guarded by ``max_n``.
    """
    graph = _as_graph(network)
    n = graph.number_of_nodes()
    if n > max_n:
        raise ValueError(f"exact C_G limited to n <= {max_n} (got {n})")
    if graph.number_of_edges() == n - 1:
        return 2
    edges = list(graph.edges())
    best = None
    for tree_edges in itertools.combinations(edges, n - 1):
        tree = nx.Graph(tree_edges)
        if tree.number_of_nodes() != n or not nx.is_connected(tree):
            continue
        worst = 2
        for u, v in edges:
            if tree.has_edge(u, v):
                continue
            worst = max(worst, nx.shortest_path_length(tree, u, v) + 1)
        best = worst if best is None else min(best, worst)
    assert best is not None
    return best


def safe_unison_parameters(network: Network) -> tuple[int, int]:
    """Conservative ``(K, α)`` valid for the Boulinier-style baseline.

    Uses the structural bounds when cheap, otherwise the trivial ones:
    ``K ≥ C_G + 1`` and ``α ≥ T_G − 2``, padded so both are at least the
    values the paper's own algorithm needs (``K > n``) to keep comparisons
    on equal periods.
    """
    n = network.n
    alpha = max(longest_chordless_cycle(network) - 2, 1)
    k = max(cyclomatic_characteristic_upper_bound(network) + 1, n + 1)
    return k, alpha
