"""Named topology generators used across tests, examples, and benchmarks.

Every generator returns a connected :class:`~repro.core.graph.Network`.
Generators that involve randomness take an explicit ``seed`` so experiment
sweeps are reproducible.
"""

from __future__ import annotations

import itertools
from random import Random

import networkx as nx

from ..core.exceptions import TopologyError
from ..core.graph import Network

__all__ = [
    "ring",
    "line",
    "star",
    "complete",
    "grid",
    "torus",
    "binary_tree",
    "random_tree",
    "hypercube",
    "caterpillar",
    "lollipop",
    "random_connected",
    "random_regular",
    "by_name",
    "TOPOLOGIES",
]


def ring(n: int) -> Network:
    """Cycle of ``n ≥ 3`` processes."""
    if n < 3:
        raise TopologyError("a ring needs at least 3 processes")
    return Network(nx.cycle_graph(n))


def line(n: int) -> Network:
    """Path of ``n ≥ 2`` processes."""
    if n < 2:
        raise TopologyError("a line needs at least 2 processes")
    return Network(nx.path_graph(n))


def star(n: int) -> Network:
    """Star with one hub and ``n-1`` leaves (``n ≥ 2``)."""
    if n < 2:
        raise TopologyError("a star needs at least 2 processes")
    return Network(nx.star_graph(n - 1))


def complete(n: int) -> Network:
    """Clique on ``n ≥ 2`` processes."""
    if n < 2:
        raise TopologyError("a complete graph needs at least 2 processes")
    return Network(nx.complete_graph(n))


def grid(rows: int, cols: int) -> Network:
    """2D mesh ``rows × cols`` (both ≥ 1, at least 2 processes total)."""
    if rows * cols < 2:
        raise TopologyError("a grid needs at least 2 processes")
    graph = nx.grid_2d_graph(rows, cols)
    return Network(nx.convert_node_labels_to_integers(graph, ordering="sorted"))


def torus(rows: int, cols: int) -> Network:
    """2D torus (grid with wraparound); needs ``rows, cols ≥ 3``."""
    if rows < 3 or cols < 3:
        raise TopologyError("a torus needs rows, cols >= 3")
    graph = nx.grid_2d_graph(rows, cols, periodic=True)
    return Network(nx.convert_node_labels_to_integers(graph, ordering="sorted"))


def binary_tree(height: int) -> Network:
    """Complete binary tree of the given height (``height ≥ 1``)."""
    if height < 1:
        raise TopologyError("binary tree height must be >= 1")
    return Network(nx.balanced_tree(2, height))


def random_tree(n: int, seed: int = 0) -> Network:
    """Uniform random labeled tree on ``n ≥ 2`` nodes."""
    if n < 2:
        raise TopologyError("a tree needs at least 2 processes")
    rng = Random(seed)
    # Random Prüfer sequence → uniform random labeled tree.
    if n == 2:
        return Network([(0, 1)])
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    graph = nx.from_prufer_sequence(prufer)
    return Network(graph)


def hypercube(dim: int) -> Network:
    """Boolean hypercube of dimension ``dim ≥ 1`` (``2**dim`` processes)."""
    if dim < 1:
        raise TopologyError("hypercube dimension must be >= 1")
    graph = nx.hypercube_graph(dim)
    return Network(nx.convert_node_labels_to_integers(graph, ordering="sorted"))


def caterpillar(spine: int, legs: int) -> Network:
    """Path of ``spine`` nodes, each with ``legs`` pendant leaves."""
    if spine < 2:
        raise TopologyError("caterpillar spine must have >= 2 nodes")
    if legs < 0:
        raise TopologyError("legs must be >= 0")
    graph = nx.path_graph(spine)
    nxt = spine
    for s in range(spine):
        for _ in range(legs):
            graph.add_edge(s, nxt)
            nxt += 1
    return Network(graph)


def lollipop(clique: int, tail: int) -> Network:
    """Clique of size ``clique`` glued to a path of ``tail`` nodes."""
    if clique < 3 or tail < 1:
        raise TopologyError("lollipop needs clique >= 3 and tail >= 1")
    return Network(nx.lollipop_graph(clique, tail))


def random_connected(n: int, p: float = 0.3, seed: int = 0) -> Network:
    """Connected Erdős–Rényi-style graph on ``n ≥ 2`` nodes.

    A random spanning tree guarantees connectivity; each remaining pair is
    added independently with probability ``p``.
    """
    if n < 2:
        raise TopologyError("need at least 2 processes")
    if not 0.0 <= p <= 1.0:
        raise TopologyError("edge probability must be in [0, 1]")
    rng = Random(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        graph.add_edge(order[i], order[rng.randrange(i)])
    for u, v in itertools.combinations(range(n), 2):
        if not graph.has_edge(u, v) and rng.random() < p:
            graph.add_edge(u, v)
    return Network(graph)


def random_regular(n: int, d: int, seed: int = 0) -> Network:
    """Connected random ``d``-regular graph (retries seeds until connected)."""
    if n <= d or (n * d) % 2 != 0:
        raise TopologyError("need n > d and n*d even for a d-regular graph")
    for attempt in range(64):
        graph = nx.random_regular_graph(d, n, seed=seed + attempt)
        if nx.is_connected(graph):
            return Network(graph)
    raise TopologyError(f"could not produce a connected {d}-regular graph on {n} nodes")


#: Registry used by the experiment harness: name → builder taking (n, seed).
TOPOLOGIES = {
    "ring": lambda n, seed=0: ring(n),
    "line": lambda n, seed=0: line(n),
    "star": lambda n, seed=0: star(n),
    "complete": lambda n, seed=0: complete(n),
    "grid": lambda n, seed=0: _square_grid(n),
    "tree": lambda n, seed=0: random_tree(n, seed=seed),
    "random": lambda n, seed=0: random_connected(n, p=0.25, seed=seed),
    "sparse": lambda n, seed=0: random_connected(n, p=0.05, seed=seed),
}


def _square_grid(n: int) -> Network:
    """Nearly square grid with at least ``n`` nodes (rows*cols ≥ n)."""
    rows = max(1, int(n**0.5))
    cols = (n + rows - 1) // rows
    return grid(rows, cols)


def by_name(name: str, n: int, seed: int = 0) -> Network:
    """Look up a topology family by name and build an ``n``-ish instance."""
    try:
        builder = TOPOLOGIES[name]
    except KeyError:
        raise TopologyError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}"
        ) from None
    return builder(n, seed=seed)
