"""Topology generators and graph properties for experiment workloads."""

from .generators import (
    TOPOLOGIES,
    binary_tree,
    by_name,
    caterpillar,
    complete,
    grid,
    hypercube,
    line,
    lollipop,
    random_connected,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)
from .properties import (
    cyclomatic_characteristic_exact,
    cyclomatic_characteristic_upper_bound,
    longest_chordless_cycle,
    safe_unison_parameters,
)

__all__ = [
    "TOPOLOGIES",
    "by_name",
    "ring",
    "line",
    "star",
    "complete",
    "grid",
    "torus",
    "binary_tree",
    "random_tree",
    "hypercube",
    "caterpillar",
    "lollipop",
    "random_connected",
    "random_regular",
    "longest_chordless_cycle",
    "cyclomatic_characteristic_upper_bound",
    "cyclomatic_characteristic_exact",
    "safe_unison_parameters",
]
