"""Algorithm SDR — Self-stabilizing Distributed cooperative Reset (Alg. 1).

SDR composes with an input algorithm ``I`` (see
:class:`~repro.reset.interface.InputAlgorithm`) into ``I ∘ SDR``; this class
*is* that composition: its rule set is the four SDR rules plus the rules of
``I``, and its per-process state joins SDR's two variables with ``I``'s.

Variables (per process ``u``):

* ``st ∈ {C, RB, RF}`` — reset status: Correct / Reset-Broadcast /
  Reset-Feedback;
* ``d ∈ ℕ`` — distance within a reset, arranging resetting processes in a
  DAG (prevents livelock and deadlock).

Rules (labels match the paper):

* ``rule_RB`` — join a neighbor's broadcast phase: ``compute(u); reset(u)``;
* ``rule_RF`` — switch to the feedback phase;
* ``rule_C``  — complete the reset locally (back to status ``C``);
* ``rule_R``  — initiate a reset: ``beRoot(u); reset(u)``.

Predicates are implemented verbatim from Algorithm 1, with one typo fixed
and documented: the paper prints ``P_Clean(u) ≡ ∀v ∈ N[u], st_u = C``; the
quantified variable is clearly ``st_v``.
"""

from __future__ import annotations

from random import Random
from typing import Any

from ..core.algorithm import Algorithm
from ..core.configuration import Configuration
from ..core.exceptions import AlgorithmError
from ..core.graph import Network
from .interface import InputAlgorithm

__all__ = ["SDR", "C", "RB", "RF", "STATUSES"]

#: Reset statuses.
C = "C"
RB = "RB"
RF = "RF"
STATUSES = (C, RB, RF)

#: SDR's variable names.
ST = "st"
DIST = "d"

#: SDR's rule labels, in the paper's order of presentation.
SDR_RULES = ("rule_RB", "rule_RF", "rule_C", "rule_R")


class SDR(Algorithm):
    """The composition ``I ∘ SDR`` for a given input algorithm ``I``.

    Parameters
    ----------
    input_algorithm:
        The algorithm to make self-stabilizing.  It is attached to this SDR
        instance (its ``P_Clean`` queries are answered here) and must run on
        the same network.

    Notes
    -----
    Rules are pairwise mutually exclusive: among SDR's own rules this is
    Lemma 5; between SDR and a requirement-conforming ``I`` it is Remark 2;
    the paper's two input algorithms also have pairwise exclusive rules.
    The simulator's strict mode checks the flag at runtime, so a violation
    of Requirement 2c by a custom input algorithm surfaces as a
    :class:`~repro.core.exceptions.ModelViolation` instead of silent
    nondeterminism — opt out with ``mutually_exclusive_rules = False`` on
    the input algorithm if yours is legitimately nondeterministic.
    """

    name = "SDR"
    mutually_exclusive_rules = True

    def __init__(self, input_algorithm: InputAlgorithm):
        super().__init__(input_algorithm.network)
        self.input = input_algorithm
        self.input.attach(self)
        self.name = f"{input_algorithm.name} o SDR"

        overlap = {ST, DIST} & set(input_algorithm.variables())
        if overlap:
            raise AlgorithmError(
                f"input algorithm must not declare SDR's variables {sorted(overlap)}"
            )
        collision = set(SDR_RULES) & set(input_algorithm.rule_names())
        if collision:
            raise AlgorithmError(
                f"input algorithm must not reuse SDR rule labels {sorted(collision)}"
            )
        self._variables = (ST, DIST, *input_algorithm.variables())
        self._rules = (*SDR_RULES, *input_algorithm.rule_names())
        if not input_algorithm.mutually_exclusive_rules:
            self.mutually_exclusive_rules = False

    # ==================================================================
    # Predicates of Algorithm 1
    # ==================================================================
    def p_icorrect(self, cfg: Configuration, u: int) -> bool:
        """``P_ICorrect(u)`` — delegated to the input algorithm."""
        return self.input.p_icorrect(cfg, u)

    def p_reset(self, cfg: Configuration, u: int) -> bool:
        """``P_reset(u)`` — delegated to the input algorithm."""
        return self.input.p_reset(cfg, u)

    def p_correct(self, cfg: Configuration, u: int) -> bool:
        """``P_Correct(u) ≡ st_u = C ⇒ P_ICorrect(u)``."""
        return cfg[u][ST] != C or self.input.p_icorrect(cfg, u)

    def p_clean(self, cfg: Configuration, u: int) -> bool:
        """``P_Clean(u) ≡ ∀v ∈ N[u], st_v = C`` (paper typo ``st_u`` fixed)."""
        return all(cfg[v][ST] == C for v in self.network.closed_neighbors(u))

    def p_r1(self, cfg: Configuration, u: int) -> bool:
        """``P_R1(u) ≡ st_u = C ∧ ¬P_reset(u) ∧ (∃v ∈ N(u) | st_v = RF)``."""
        return (
            cfg[u][ST] == C
            and not self.input.p_reset(cfg, u)
            and any(cfg[v][ST] == RF for v in self.network.neighbors(u))
        )

    def p_rb(self, cfg: Configuration, u: int) -> bool:
        """``P_RB(u) ≡ st_u = C ∧ (∃v ∈ N(u) | st_v = RB)``."""
        return cfg[u][ST] == C and any(
            cfg[v][ST] == RB for v in self.network.neighbors(u)
        )

    def p_rf(self, cfg: Configuration, u: int) -> bool:
        """``P_RF(u)``: ready to switch from broadcast to feedback.

        ``st_u = RB ∧ P_reset(u) ∧ ∀v ∈ N(u):
        (st_v = RB ∧ d_v ≤ d_u) ∨ (st_v = RF ∧ P_reset(v))``.
        """
        if cfg[u][ST] != RB or not self.input.p_reset(cfg, u):
            return False
        du = cfg[u][DIST]
        for v in self.network.neighbors(u):
            stv = cfg[v][ST]
            if stv == RB and cfg[v][DIST] <= du:
                continue
            if stv == RF and self.input.p_reset(cfg, v):
                continue
            return False
        return True

    def p_c(self, cfg: Configuration, u: int) -> bool:
        """``P_C(u)``: the feedback reached ``u``'s whole sub-DAG.

        ``st_u = RF ∧ ∀v ∈ N[u]: P_reset(v) ∧
        ((st_v = RF ∧ d_v ≥ d_u) ∨ st_v = C)``.
        """
        if cfg[u][ST] != RF:
            return False
        du = cfg[u][DIST]
        for v in self.network.closed_neighbors(u):
            if not self.input.p_reset(cfg, v):
                return False
            stv = cfg[v][ST]
            if stv == C:
                continue
            if stv == RF and cfg[v][DIST] >= du:
                continue
            return False
        return True

    def p_r2(self, cfg: Configuration, u: int) -> bool:
        """``P_R2(u) ≡ st_u ≠ C ∧ ¬P_reset(u)``."""
        return cfg[u][ST] != C and not self.input.p_reset(cfg, u)

    def p_up(self, cfg: Configuration, u: int) -> bool:
        """``P_Up(u) ≡ ¬P_RB(u) ∧ (P_R1(u) ∨ P_R2(u) ∨ ¬P_Correct(u))``."""
        if self.p_rb(cfg, u):
            return False
        return self.p_r1(cfg, u) or self.p_r2(cfg, u) or not self.p_correct(cfg, u)

    # ------------------------------------------------------------------
    # Derived predicates used by the analysis (Definitions 1 and 6)
    # ------------------------------------------------------------------
    def p_root(self, cfg: Configuration, u: int) -> bool:
        """``P_root(u) ≡ st_u = RB ∧ ∀v ∈ N(u): st_v = RB ⇒ d_v ≥ d_u``."""
        if cfg[u][ST] != RB:
            return False
        du = cfg[u][DIST]
        return all(
            cfg[v][ST] != RB or cfg[v][DIST] >= du
            for v in self.network.neighbors(u)
        )

    def is_alive_root(self, cfg: Configuration, u: int) -> bool:
        """Alive root: ``P_Up(u) ∨ P_root(u)`` (Definition 1)."""
        return self.p_up(cfg, u) or self.p_root(cfg, u)

    def is_dead_root(self, cfg: Configuration, u: int) -> bool:
        """Dead root: ``st_u = RF ∧ ∀v ∈ N(u): st_v ≠ C ⇒ d_v ≥ d_u``."""
        if cfg[u][ST] != RF:
            return False
        du = cfg[u][DIST]
        return all(
            cfg[v][ST] == C or cfg[v][DIST] >= du
            for v in self.network.neighbors(u)
        )

    def is_normal(self, cfg: Configuration, live=None) -> bool:
        """Normal configuration: ``∀u, P_Clean(u) ∧ P_ICorrect(u)``.

        By Theorem 1 / Corollary 5 this is exactly the set of terminal
        configurations of the SDR layer, i.e. the attractor ``P4``.
        ``live`` (an iterable of process ids) restricts the quantifier to
        the live subsystem under topology churn — a crashed process's
        frozen registers are not part of the configuration being judged.
        """
        procs = self.network.processes() if live is None else live
        return all(
            cfg[u][ST] == C and self.input.p_icorrect(cfg, u)
            for u in procs
        )

    # ==================================================================
    # Algorithm interface
    # ==================================================================
    def variables(self) -> tuple[str, ...]:
        return self._variables

    def rule_names(self) -> tuple[str, ...]:
        return self._rules

    def guard(self, rule: str, cfg: Configuration, u: int) -> bool:
        if rule == "rule_RB":
            return self.p_rb(cfg, u)
        if rule == "rule_RF":
            return self.p_rf(cfg, u)
        if rule == "rule_C":
            return self.p_c(cfg, u)
        if rule == "rule_R":
            return self.p_up(cfg, u)
        return self.input.guard(rule, cfg, u)

    def execute(self, rule: str, cfg: Configuration, u: int) -> dict[str, Any]:
        if rule == "rule_RB":
            # compute(u); reset(u)
            updates = self._compute(cfg, u)
            updates.update(self.input.reset_updates(cfg, u))
            return updates
        if rule == "rule_RF":
            return {ST: RF}
        if rule == "rule_C":
            return {ST: C}
        if rule == "rule_R":
            # beRoot(u); reset(u)
            updates = {ST: RB, DIST: 0}
            updates.update(self.input.reset_updates(cfg, u))
            return updates
        return self.input.execute(rule, cfg, u)

    def _compute(self, cfg: Configuration, u: int) -> dict[str, Any]:
        """``compute(u)``: join the broadcast at minimal distance + 1."""
        dmin = min(
            cfg[v][DIST]
            for v in self.network.neighbors(u)
            if cfg[v][ST] == RB
        )
        return {ST: RB, DIST: dmin + 1}

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------
    def initial_state(self, u: int) -> dict[str, Any]:
        """Clean SDR layer (status ``C``) over the input's ``γ_init``."""
        state = {ST: C, DIST: 0}
        state.update(self.input.initial_state(u))
        return state

    def random_state(self, u: int, rng: Random) -> dict[str, Any]:
        """Arbitrary state: any status, any distance in ``[0, 2n]``.

        ``d_u ∈ ℕ`` is unbounded in the paper; guards only *compare*
        distances, so corruption beyond ``2n`` is behaviorally equivalent
        to a relabeling of ``[0, 2n]`` values.
        """
        state = {
            ST: STATUSES[rng.randrange(3)],
            DIST: rng.randrange(2 * self.network.n + 1),
        }
        state.update(self.input.random_state(u, rng))
        return state

    def rule_set(self):
        """``I ∘ SDR`` composed at the IR level, when the input is ported."""
        try:
            from .kernelized import sdr_rule_set
        except ModuleNotFoundError as exc:
            if exc.name and exc.name.split(".")[0] == "numpy":
                return None  # numpy missing: dict backend only
            raise
        input_rule_set = self.input.input_rule_set()
        if input_rule_set is None:
            return None
        return sdr_rule_set(self, input_rule_set)

    def sdr_moves_of(self, moves_per_rule: dict[str, int]) -> int:
        """Total SDR-rule moves in a per-rule move tally."""
        return sum(moves_per_rule.get(rule, 0) for rule in SDR_RULES)
