"""SDR — the paper's self-stabilizing distributed cooperative reset."""

from . import analysis
from .interface import Host, InputAlgorithm, TrivialHost
from .requirements import (
    RequirementObserver,
    check_configuration,
    check_independence,
    check_requirements,
    check_reset_establishes,
)
from .sdr import C, DIST, RB, RF, SDR, SDR_RULES, ST, STATUSES

__all__ = [
    "SDR",
    "InputAlgorithm",
    "Host",
    "TrivialHost",
    "RequirementObserver",
    "check_requirements",
    "check_configuration",
    "check_independence",
    "check_reset_establishes",
    "analysis",
    "C",
    "RB",
    "RF",
    "ST",
    "DIST",
    "STATUSES",
    "SDR_RULES",
]
