"""Proof artifacts of Section 4 as executable analyses.

The paper's move-complexity argument is built on a small vocabulary:

* **alive / dead roots** (Definition 1) — initiators of resets; alive roots
  are never created (Theorem 3), so their count only decreases;
* **segments** (Definition 3) — maximal execution chunks in which the
  number of alive roots stays constant; every execution has at most ``n+1``
  of them (Remark 5);
* **reset parents / branches** (Definitions 4, 5) — the trails a reset
  leaves in the network, forming a DAG ordered by the distance values;
* **per-segment rule language** (Theorem 4 / Corollary 3) — within one
  segment a process's SDR moves match
  ``(rule_C + ε)(rule_RB + rule_R + ε)(rule_RF + ε)``;
* **attractors ``P1 ⊇ P2 ⊇ P3 ⊇ P4``** (Definition 6) — the staged
  convergence towards normal configurations.

These functions power the property-based tests and the bound-validation
benchmarks; they all operate on recorded traces with configuration
snapshots (small systems) or on single configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.configuration import Configuration
from ..core.trace import Trace
from .sdr import C, DIST, RB, RF, SDR, SDR_RULES, ST

__all__ = [
    "alive_roots",
    "dead_roots",
    "reset_parents",
    "reset_children",
    "max_branch_depth",
    "reset_branches",
    "Segment",
    "split_segments",
    "sdr_sequence_in_language",
    "segment_rule_sequences_ok",
    "attractor_level",
    "attractor_p1",
    "attractor_p2",
    "attractor_p3",
    "attractor_p4",
]


# ----------------------------------------------------------------------
# Roots (Definitions 1 and 2)
# ----------------------------------------------------------------------
def alive_roots(sdr: SDR, cfg: Configuration) -> set[int]:
    """``AR(γ)``: processes satisfying ``P_Up ∨ P_root``."""
    return {u for u in sdr.network.processes() if sdr.is_alive_root(cfg, u)}


def dead_roots(sdr: SDR, cfg: Configuration) -> set[int]:
    """Processes satisfying the dead-root predicate of Definition 1."""
    return {u for u in sdr.network.processes() if sdr.is_dead_root(cfg, u)}


# ----------------------------------------------------------------------
# Reset parents and branches (Definitions 4 and 5)
# ----------------------------------------------------------------------
def rparent(sdr: SDR, cfg: Configuration, v: int, u: int) -> bool:
    """``RParent(v, u)``: ``v`` caused ``u``'s participation in a reset.

    Holds iff ``v ∈ N(u)``, ``st_u ≠ C``, ``P_reset(u)``, ``d_u > d_v`` and
    ``(st_u = st_v ∨ st_v = RB)``.
    """
    return (
        sdr.network.are_neighbors(u, v)
        and cfg[u][ST] != C
        and sdr.input.p_reset(cfg, u)
        and cfg[u][DIST] > cfg[v][DIST]
        and (cfg[u][ST] == cfg[v][ST] or cfg[v][ST] == RB)
    )


def reset_parents(sdr: SDR, cfg: Configuration, u: int) -> list[int]:
    """All reset parents of ``u`` (a process may have several)."""
    return [v for v in sdr.network.neighbors(u) if rparent(sdr, cfg, v, u)]


def reset_children(sdr: SDR, cfg: Configuration, v: int) -> list[int]:
    """All reset children of ``v``."""
    return [u for u in sdr.network.neighbors(v) if rparent(sdr, cfg, v, u)]


def _roots(sdr: SDR, cfg: Configuration) -> set[int]:
    return alive_roots(sdr, cfg) | dead_roots(sdr, cfg)


def max_branch_depth(sdr: SDR, cfg: Configuration) -> dict[int, int]:
    """``md(u)``: the maximum depth of ``u`` over all reset branches.

    Only processes belonging to at least one branch appear.  Computed by a
    longest-path DP over the parent→child DAG (acyclic because ``d``
    strictly increases along branches), seeded at the alive/dead roots.
    """
    depth: dict[int, int] = {u: 0 for u in _roots(sdr, cfg)}
    # Relax in order of increasing d: every RParent edge goes up in d.
    order = sorted(
        (u for u in sdr.network.processes() if cfg[u][ST] != C),
        key=lambda u: cfg[u][DIST],
    )
    for u in order:
        if u not in depth:
            continue
        for child in reset_children(sdr, cfg, u):
            candidate = depth[u] + 1
            if candidate > depth.get(child, -1):
                depth[child] = candidate
    return depth


def reset_branches(sdr: SDR, cfg: Configuration, limit: int = 100_000) -> list[list[int]]:
    """Enumerate all maximal reset branches (test-sized systems only).

    A branch is ``u1 … uk`` with ``u1`` an alive or dead root and
    ``RParent(u_{i-1}, u_i)`` for each link.  ``limit`` bounds the number
    of enumerated branches to guard against combinatorial blowups.
    """
    branches: list[list[int]] = []

    def extend(prefix: list[int]) -> None:
        if len(branches) >= limit:
            raise RuntimeError("too many reset branches to enumerate")
        children = reset_children(sdr, cfg, prefix[-1])
        children = [c for c in children if c not in prefix]
        if not children:
            branches.append(list(prefix))
            return
        for child in children:
            prefix.append(child)
            extend(prefix)
            prefix.pop()

    for root in sorted(_roots(sdr, cfg)):
        extend([root])
    return branches


# ----------------------------------------------------------------------
# Segments (Definition 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Segment:
    """One segment of an execution, as configuration-index bounds.

    ``start``/``stop`` index into the trace's configuration list:
    the segment spans configurations ``γ_start … γ_stop`` inclusive.
    """

    start: int
    stop: int
    alive_roots_at_start: int


def split_segments(sdr: SDR, trace: Trace) -> list[Segment]:
    """Split a recorded execution into segments (Definition 3).

    Requires configuration snapshots.  A new segment starts right after any
    step in which ``|AR|`` decreased.
    """
    configs = trace.configurations
    if not configs:
        raise ValueError("trace has no configuration snapshots")
    counts = [len(alive_roots(sdr, cfg)) for cfg in configs]
    segments: list[Segment] = []
    start = 0
    for i in range(1, len(configs)):
        if counts[i] < counts[i - 1]:
            segments.append(Segment(start, i, counts[start]))
            start = i
    segments.append(Segment(start, len(configs) - 1, counts[start]))
    return segments


# ----------------------------------------------------------------------
# Per-segment rule language (Theorem 4, Corollary 3)
# ----------------------------------------------------------------------
def sdr_sequence_in_language(rules: list[str]) -> bool:
    """Whether an SDR-rule sequence matches
    ``(rule_C + ε)(rule_RB + rule_R + ε)(rule_RF + ε)``."""
    i = 0
    if i < len(rules) and rules[i] == "rule_C":
        i += 1
    if i < len(rules) and rules[i] in ("rule_RB", "rule_R"):
        i += 1
    if i < len(rules) and rules[i] == "rule_RF":
        i += 1
    return i == len(rules)


def segment_rule_sequences_ok(sdr: SDR, trace: Trace) -> bool:
    """Check Theorem 4 on a recorded execution.

    For every segment and every process, the subsequence of SDR rules the
    process executed within the segment must be in the language above
    (input-algorithm rules may interleave freely — Corollary 3).
    """
    segments = split_segments(sdr, trace)
    sdr_rules = set(SDR_RULES)
    for seg in segments:
        per_process: dict[int, list[str]] = {}
        for record in trace.records[seg.start : seg.stop]:
            for u, rule in record.selection.items():
                if rule in sdr_rules:
                    per_process.setdefault(u, []).append(rule)
        for u, seq in per_process.items():
            if not sdr_sequence_in_language(seq):
                return False
    return True


# ----------------------------------------------------------------------
# Attractors (Definition 6)
# ----------------------------------------------------------------------
def attractor_p1(sdr: SDR, cfg: Configuration) -> bool:
    """``P1``: ``¬P_Up(u)`` everywhere."""
    return not any(sdr.p_up(cfg, u) for u in sdr.network.processes())


def attractor_p2(sdr: SDR, cfg: Configuration) -> bool:
    """``P2``: ``P1`` and ``¬P_RB(u)`` everywhere."""
    return attractor_p1(sdr, cfg) and not any(
        sdr.p_rb(cfg, u) for u in sdr.network.processes()
    )


def attractor_p3(sdr: SDR, cfg: Configuration) -> bool:
    """``P3``: ``P2`` and no process has status ``RB``."""
    return attractor_p2(sdr, cfg) and all(
        cfg[u][ST] != RB for u in sdr.network.processes()
    )


def attractor_p4(sdr: SDR, cfg: Configuration) -> bool:
    """``P4`` (normal configurations): ``P3`` and no status ``RF``."""
    return attractor_p3(sdr, cfg) and all(
        cfg[u][ST] != RF for u in sdr.network.processes()
    )


def attractor_level(sdr: SDR, cfg: Configuration) -> int:
    """Highest attractor index (0–4) the configuration satisfies."""
    level = 0
    for i, pred in enumerate(
        (attractor_p1, attractor_p2, attractor_p3, attractor_p4), start=1
    ):
        if pred(sdr, cfg):
            level = i
        else:
            break
    return level
