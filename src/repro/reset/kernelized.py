"""IR definition of Algorithm SDR (composed with its input algorithm).

The former handwritten numpy program is replaced by
:func:`sdr_rule_set`, which *composes at the IR level*: the input
algorithm's :class:`~repro.ir.rules.InputRuleSet` contributes its
``P_ICorrect``/``P_reset`` expressions and its rules (gated by SDR's
``P_Clean`` where the input declared ``clean_gated``), and SDR's four
rules of Algorithm 1 are stated over the joint schema.  One generated
kernel then evaluates the whole ``I ∘ SDR`` system — the guards of host
and input share subexpressions through the compiler's CSE instead of a
host/input call boundary.

The normal-configuration fast path (Theorem 1's attractor) survives as a
declarative :class:`~repro.ir.rules.FastPath`: when every status is C,
``P_Clean ≡ true`` and the only live guards are ``¬P_ICorrect``
(rule R) and the input's own rules, ungated.
"""

from __future__ import annotations

import numpy as np

from ..core.kernel.schema import Schema, Var
from ..ir import (
    Assign,
    FastPath,
    Rule,
    RuleSet,
    all_neighbors,
    any_neighbors,
    col,
    min_over_neighbors,
    neigh,
    own,
)
from ..ir.kernelc import IRKernelProgram
from .sdr import DIST, SDR_RULES, ST, STATUSES

__all__ = ["sdr_rule_set", "SDRKernelProgram"]

#: Integer codes of the ``st`` enum (indices into STATUSES = (C, RB, RF)).
_C, _RB, _RF = 0, 1, 2

#: Neutral element for the masked min in ``compute(u)``.
_NO_DIST = np.iinfo(np.int64).max // 2


def sdr_rule_set(sdr, input_rule_set) -> RuleSet:
    """``I ∘ SDR`` as one composed rule set over the joint schema."""
    st, d = col(ST), col(DIST)
    st_is_c = st == _C
    est = neigh(st)
    est_c, est_rb, est_rf = est == _C, est == _RB, est == _RF
    edge_d, own_d = neigh(d), own(d)

    # P_Clean(u): every member of N[u] (u included) has status C.
    clean = st_is_c & all_neighbors(est_c)
    icorrect = input_rule_set.icorrect
    reset = input_rule_set.reset
    edge_reset = neigh(reset)

    # P_Correct(u) ≡ st_u = C ⇒ P_ICorrect(u).
    correct = ~st_is_c | icorrect
    p_r1 = st_is_c & ~reset & any_neighbors(est_rf)
    p_rb = st_is_c & any_neighbors(est_rb)
    p_rf = (
        (st == _RB)
        & reset
        & all_neighbors((est_rb & (edge_d <= own_d)) | (est_rf & edge_reset))
    )
    # P_C quantifies over N[u]; the own-process conjunct reduces to
    # P_reset(u) once st_u = RF holds (d_u ≥ d_u is vacuous).
    p_c = (
        (st == _RF)
        & reset
        & all_neighbors(edge_reset & ((est_rf & (edge_d >= own_d)) | est_c))
    )
    p_r2 = ~st_is_c & ~reset
    p_up = ~p_rb & (p_r1 | p_r2 | ~correct)

    # compute(u); reset(u): join the broadcast at min distance + 1.
    dmin = min_over_neighbors(edge_d, where=est_rb, default=_NO_DIST)
    reset_action = tuple(input_rule_set.reset_action)
    rules = [
        Rule("rule_RB", p_rb,
             [Assign(ST, _RB), Assign(DIST, dmin + 1), *reset_action]),
        Rule("rule_RF", p_rf, [Assign(ST, _RF)]),
        Rule("rule_C", p_c, [Assign(ST, _C)]),
        # beRoot(u); reset(u)
        Rule("rule_R", p_up,
             [Assign(ST, _RB), Assign(DIST, 0), *reset_action]),
    ]
    for rule in input_rule_set.rules:
        guard = clean & rule.guard if rule.clean_gated else rule.guard
        rules.append(Rule(rule.label, guard, rule.action))

    # Normal-configuration fast path (Theorem 1's attractor, where every
    # stabilized execution lives): with all statuses C, P_Clean ≡ true,
    # P_RB = P_RF = P_C = P_R1 = P_R2 ≡ false, and P_Up collapses to
    # ¬P_Correct = ¬P_ICorrect.  The three everywhere-false reset rules
    # are omitted (missing guard-mask keys read as all-false).
    fast_guards = {"rule_R": ~icorrect}
    fast_guards.update(
        {rule.label: rule.guard for rule in input_rule_set.rules}
    )

    return RuleSet(
        f"sdr({input_rule_set.name})",
        sdr.network,
        Schema(Var.enum(ST, STATUSES), Var.int(DIST),
               *input_rule_set.schema.vars),
        rules,
        # Per-process conjunct of ``SDR.is_normal``: st = C ∧ P_ICorrect.
        # Its all-processes conjunction is exactly the normal configuration
        # predicate, so the fused loop detects stabilization undecoded.
        predicates={"normal": st_is_c & icorrect},
        fast_path=FastPath(st == _C, fast_guards),
        tile_check=input_rule_set.tile_check,
    )


class SDRKernelProgram(IRKernelProgram):
    """Generated ``I ∘ SDR`` program for an IR-ported input algorithm."""

    def __init__(self, sdr, input_program):
        super().__init__(sdr_rule_set(sdr, input_program.rule_set))


assert tuple(SDR_RULES) == ("rule_RB", "rule_RF", "rule_C", "rule_R")
assert STATUSES.index("C") == _C and STATUSES.index("RB") == _RB
