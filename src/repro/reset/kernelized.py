"""Kernel (struct-of-arrays) port of Algorithm SDR.

SDR's per-process state flattens to two columns — ``st`` as an int8 enum
over ``(C, RB, RF)`` and ``d`` as int64 — joined with the columns of the
ported input algorithm.  Every predicate of Algorithm 1 is a per-edge
comparison followed by a segmented all/any reduction over CSR, evaluated
for all processes at once; the input algorithm contributes its own
vectorized ``P_ICorrect``/``P_reset`` masks and rule guards (gated here
by SDR's ``P_Clean`` mask, mirroring the host wiring of the dict path).

Composite atomicity: actions read the frozen pre-step columns (``read``)
and write the double buffer (``write``); ``compute(u)``'s minimum over
broadcasting neighbors is one masked segmented min.
"""

from __future__ import annotations

import numpy as np

from ..core.kernel.csr import CSRAdjacency
from ..core.kernel.programs import InputKernelProgram, KernelProgram
from ..core.kernel.schema import Schema, Var
from .sdr import DIST, SDR_RULES, ST, STATUSES

__all__ = ["SDRKernelProgram"]

#: Integer codes of the ``st`` enum (indices into STATUSES = (C, RB, RF)).
_C, _RB, _RF = 0, 1, 2

#: Neutral element for the masked min in ``compute(u)``.
_NO_DIST = np.iinfo(np.int64).max // 2


class SDRKernelProgram(KernelProgram):
    """Vectorized ``I ∘ SDR`` for a kernel-ported input algorithm ``I``."""

    __slots__ = ("csr", "input", "schema", "rules", "_all_true")

    def __init__(self, sdr, input_program: InputKernelProgram):
        self.csr = CSRAdjacency(sdr.network)
        self.input = input_program
        self.schema = Schema(
            Var.enum(ST, STATUSES), Var.int(DIST), *input_program.schema.vars
        )
        self.rules = sdr.rule_names()
        n = sdr.network.n
        # Shared constant for the all-C fast path (read-only by contract).
        self._all_true = np.ones(n, dtype=np.bool_)

    def tiled(self, copies: int) -> "SDRKernelProgram | None":
        input_tiled = self.input.tiled(copies)
        if input_tiled is None:
            return None
        prog = object.__new__(SDRKernelProgram)
        prog.csr = self.csr.tile(copies)
        prog.input = input_tiled
        prog.schema = self.schema
        prog.rules = self.rules
        prog._all_true = np.ones(prog.csr.n, dtype=np.bool_)
        return prog

    # ------------------------------------------------------------------
    def guard_masks(self, cols) -> dict[str, np.ndarray]:
        csr = self.csr
        st, dist = cols[ST], cols[DIST]

        if not st.any():  # every status is C (code 0)
            # Normal-configuration fast path (Theorem 1's attractor, where
            # every stabilized execution lives): with all statuses C,
            # P_Clean ≡ true, P_RB = P_RF = P_C = P_R1 = P_R2 ≡ false, and
            # P_Up collapses to ¬P_Correct = ¬P_ICorrect.  The three
            # everywhere-false reset rules are omitted (the guard-mask
            # contract lets consumers treat missing keys as all-false).
            icorrect, _, input_masks = self.input.host_masks(cols, self._all_true)
            masks = {"rule_R": ~icorrect}
            masks.update(input_masks)
            return masks

        st_is_c = st == _C
        edge_st = csr.pull(st)
        edge_d = csr.pull(dist)
        own_d = csr.own(dist)
        est_c = edge_st == _C
        est_rb = edge_st == _RB
        est_rf = edge_st == _RF

        # P_Clean(u): every member of N[u] (u included) has status C.
        clean = st_is_c & csr.all_neigh(est_c)
        icorrect, reset, input_masks = self.input.host_masks(cols, clean)
        edge_reset = csr.pull(reset)
        # P_Correct(u) ≡ st_u = C ⇒ P_ICorrect(u).
        correct = ~st_is_c | icorrect
        p_r1 = st_is_c & ~reset & csr.any_neigh(est_rf)
        p_rb = st_is_c & csr.any_neigh(est_rb)
        p_rf = (
            (st == _RB)
            & reset
            & csr.all_neigh((est_rb & (edge_d <= own_d)) | (est_rf & edge_reset))
        )
        # P_C quantifies over N[u]; the own-process conjunct reduces to
        # P_reset(u) once st_u = RF holds (d_u ≥ d_u is vacuous).
        p_c = (
            (st == _RF)
            & reset
            & csr.all_neigh(edge_reset & ((est_rf & (edge_d >= own_d)) | est_c))
        )
        p_r2 = ~st_is_c & ~reset
        p_up = ~p_rb & (p_r1 | p_r2 | ~correct)

        masks = {
            "rule_RB": p_rb,
            "rule_RF": p_rf,
            "rule_C": p_c,
            "rule_R": p_up,
        }
        masks.update(input_masks)
        return masks

    # ------------------------------------------------------------------
    def normal_mask(self, cols) -> np.ndarray:
        """Per-process conjunct of ``SDR.is_normal``: ``st = C ∧ P_ICorrect``.

        The all-processes conjunction of this mask is exactly the normal
        configuration predicate (Theorem 1's attractor), so the fused run
        loop can detect stabilization without decoding.
        """
        return (cols[ST] == _C) & self.input.icorrect_mask(cols)

    # ------------------------------------------------------------------
    def apply(self, rule, idx, read, write) -> None:
        if rule == "rule_RB":
            # compute(u); reset(u): join the broadcast at min distance + 1.
            csr = self.csr
            edge_st = csr.pull(read[ST])
            dmin = csr.min_neigh(csr.pull(read[DIST]), edge_st == _RB, _NO_DIST)
            write[ST][idx] = _RB
            write[DIST][idx] = dmin[idx] + 1
            self.input.apply_reset(idx, read, write)
        elif rule == "rule_RF":
            write[ST][idx] = _RF
        elif rule == "rule_C":
            write[ST][idx] = _C
        elif rule == "rule_R":
            # beRoot(u); reset(u)
            write[ST][idx] = _RB
            write[DIST][idx] = 0
            self.input.apply_reset(idx, read, write)
        else:
            self.input.apply(rule, idx, read, write)


assert tuple(SDR_RULES) == ("rule_RB", "rule_RF", "rule_C", "rule_R")
assert STATUSES.index("C") == _C and STATUSES.index("RB") == _RB
