"""Runtime validation of the SDR input-algorithm requirements (Section 3.5).

The correctness of ``I ∘ SDR`` rests on ``I`` satisfying Requirements 1 and
2a–2e.  The paper discharges them by hand for U and FGA; this module checks
them *dynamically* along concrete executions (and statically on sampled
configurations), so that new input algorithms can be validated without
re-doing the proofs.

Checks are split into:

* :func:`check_configuration` — per-configuration requirements (2c, 2d);
* :func:`check_independence` — read-set requirements (2a's "no SDR
  variables", 2b's "own variables only"), validated by scrambling the
  variables the predicate must not depend on;
* :func:`check_reset_establishes` — Requirement 2e;
* :class:`RequirementObserver` — a simulator observer enforcing all of the
  above plus Requirement 1 (input rules write only input variables) and the
  closure part of 2a along every step of a live execution.
"""

from __future__ import annotations

from random import Random

from ..core.configuration import Configuration
from ..core.exceptions import RequirementViolation
from ..core.trace import StepRecord
from .sdr import DIST, SDR, SDR_RULES, ST

__all__ = [
    "check_configuration",
    "check_independence",
    "check_reset_establishes",
    "check_requirements",
    "RequirementObserver",
]


def check_configuration(sdr: SDR, cfg: Configuration) -> None:
    """Requirements 2c and 2d on one configuration.

    2c: ``¬P_ICorrect(u) ∨ ¬P_Clean(u)`` implies no rule of ``I`` enabled.
    2d: ``P_reset`` on all of ``N[u]`` implies ``P_ICorrect(u)``.
    """
    inp = sdr.input
    for u in sdr.network.processes():
        blocked = not inp.p_icorrect(cfg, u) or not sdr.p_clean(cfg, u)
        if blocked:
            for rule in inp.rule_names():
                if inp.guard(rule, cfg, u):
                    raise RequirementViolation(
                        f"Req 2c: input rule {rule!r} enabled at process {u} although "
                        "¬P_ICorrect ∨ ¬P_Clean holds there"
                    )
        if all(inp.p_reset(cfg, v) for v in sdr.network.closed_neighbors(u)):
            if not inp.p_icorrect(cfg, u):
                raise RequirementViolation(
                    f"Req 2d: all of N[{u}] satisfy P_reset but P_ICorrect({u}) fails"
                )


def check_independence(sdr: SDR, cfg: Configuration, rng: Random, samples: int = 4) -> None:
    """Requirements 2a (first half) and 2b: predicate read-sets.

    ``P_ICorrect(u)`` must be insensitive to SDR's variables anywhere, and
    ``P_reset(u)`` must be insensitive to *every* variable outside ``u``'s
    own ``I``-state.  We scramble the forbidden variables ``samples`` times
    and require identical truth values.
    """
    inp = sdr.input
    n = sdr.network.n
    base_icorrect = [inp.p_icorrect(cfg, u) for u in range(n)]
    base_reset = [inp.p_reset(cfg, u) for u in range(n)]

    for _ in range(samples):
        scrambled = cfg.copy()
        for v in range(n):
            junk = sdr.random_state(v, rng)
            scrambled.set(v, ST, junk[ST])
            scrambled.set(v, DIST, junk[DIST])
        for u in range(n):
            if inp.p_icorrect(scrambled, u) != base_icorrect[u]:
                raise RequirementViolation(
                    f"Req 2a: P_ICorrect({u}) depends on SDR variables"
                )

        scrambled = cfg.copy()
        for v in range(n):
            junk = inp.random_state(v, rng)
            for var, value in junk.items():
                scrambled.set(v, var, value)
        for u in range(n):
            # Restore u's own input variables, keep everyone else junked.
            probe = scrambled.copy()
            for var in inp.variables():
                probe.set(u, var, cfg[u][var])
            if inp.p_reset(probe, u) != base_reset[u]:
                raise RequirementViolation(
                    f"Req 2b: P_reset({u}) depends on other processes' variables"
                )


def check_reset_establishes(sdr: SDR, cfg: Configuration, u: int) -> None:
    """Requirement 2e: applying ``reset(u)`` alone establishes ``P_reset(u)``."""
    updates = sdr.input.reset_updates(cfg, u)
    unknown = set(updates) - set(sdr.input.variables())
    if unknown:
        raise RequirementViolation(
            f"Req 1: reset({u}) writes non-input variables {sorted(unknown)}"
        )
    probe = cfg.copy()
    for var, value in updates.items():
        probe.set(u, var, value)
    if not sdr.input.p_reset(probe, u):
        raise RequirementViolation(f"Req 2e: P_reset({u}) fails right after reset({u})")


def check_requirements(
    sdr: SDR, cfg: Configuration, rng: Random | None = None, samples: int = 4
) -> None:
    """One-shot static check of every sampleable requirement on ``cfg``."""
    rng = rng if rng is not None else Random(0)
    check_configuration(sdr, cfg)
    check_independence(sdr, cfg, rng, samples=samples)
    for u in sdr.network.processes():
        check_reset_establishes(sdr, cfg, u)


class RequirementObserver:
    """Simulator observer validating the requirements along an execution.

    Checks per step:

    * Requirement 1 — input rules only update input variables (verified by
      re-running the action against the pre-step snapshot);
    * Requirement 2c/2d on every reached configuration;
    * Requirement 2e for every process that executed ``rule_RB``/``rule_R``;
    * closure half of 2a — in steps consisting solely of input-rule moves,
      ``P_ICorrect(u)`` never flips from true to false.

    Intended for tests (it snapshots the configuration every step).
    """

    def __init__(self, sdr: SDR):
        self.sdr = sdr
        self._prev: Configuration | None = None
        self._prev_icorrect: list[bool] | None = None

    def on_start(self, sim) -> None:
        check_configuration(self.sdr, sim.cfg)
        self._remember(sim.cfg)

    def _remember(self, cfg: Configuration) -> None:
        self._prev = cfg.copy()
        self._prev_icorrect = [
            self.sdr.input.p_icorrect(cfg, u) for u in self.sdr.network.processes()
        ]

    def __call__(self, sim, record: StepRecord) -> None:
        cfg = sim.cfg
        prev = self._prev
        assert prev is not None and self._prev_icorrect is not None

        input_rules = set(self.sdr.input.rule_names())
        for u, rule in record.selection.items():
            if rule in input_rules:
                updates = self.sdr.input.execute(rule, prev, u)
                illegal = set(updates) - set(self.sdr.input.variables())
                if illegal:
                    raise RequirementViolation(
                        f"Req 1: input rule {rule!r} at {u} writes {sorted(illegal)}"
                    )
            if rule in ("rule_RB", "rule_R") and not self.sdr.input.p_reset(cfg, u):
                raise RequirementViolation(
                    f"Req 2e: P_reset({u}) fails right after {rule}"
                )

        check_configuration(self.sdr, cfg)

        only_input_moves = all(r in input_rules for r in record.selection.values())
        if only_input_moves:
            for u in self.sdr.network.processes():
                if self._prev_icorrect[u] and not self.sdr.input.p_icorrect(cfg, u):
                    raise RequirementViolation(
                        f"Req 2a: P_ICorrect({u}) not closed by an I-only step "
                        f"(step {record.index})"
                    )
        self._remember(cfg)
