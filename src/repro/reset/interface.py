"""The input-algorithm interface of SDR (paper, Section 3.5).

SDR re-initializes an *input algorithm* ``I``.  To be resettable, ``I`` must
provide three hooks and obey five requirements:

* ``P_ICorrect(u)`` — local consistency predicate ("I is locally
  checkable"); must not read SDR variables and must be closed by ``I``
  (Req. 2a);
* ``P_reset(u)`` — characterizes the pre-defined initial state; reads only
  ``u``'s own ``I``-variables (Req. 2b);
* ``reset(u)`` — the macro writing that pre-defined state (Req. 2e);
* no rule of ``I`` is enabled at ``u`` when ``¬P_ICorrect(u) ∨ ¬P_Clean(u)``
  (Req. 2c) — ``P_Clean`` comes from SDR, so input algorithms consult their
  *host* for it;
* if every member of ``N[u]`` satisfies ``P_reset``, then ``P_ICorrect(u)``
  (Req. 2d);
* ``I`` never writes SDR's variables (Req. 1 — guaranteed by construction
  here, since actions may only return their own declared variables).

:class:`InputAlgorithm` encodes this contract.  An input algorithm can run
*standalone* (the paper's Theorems 5, 9: ``U`` and ``FGA`` are correct
non-self-stabilizing algorithms from ``γ_init``); standalone instances see a
:class:`TrivialHost` whose ``P_Clean`` is constantly true.
"""

from __future__ import annotations

import abc
from typing import Any, Protocol

from ..core.algorithm import Algorithm
from ..core.configuration import Configuration

__all__ = ["Host", "TrivialHost", "InputAlgorithm"]


class Host(Protocol):
    """What an input algorithm may ask of the layer hosting it."""

    def p_clean(self, cfg: Configuration, u: int) -> bool:
        """Whether every member of ``N[u]`` has reset status ``C``."""
        ...


class TrivialHost:
    """Host used when the input algorithm runs without SDR.

    Standalone execution corresponds to a system where no reset is ever in
    progress, i.e. ``P_Clean`` holds everywhere, always.
    """

    def p_clean(self, cfg: Configuration, u: int) -> bool:
        return True


_TRIVIAL_HOST = TrivialHost()


class InputAlgorithm(Algorithm):
    """Base class for SDR-resettable algorithms (the paper's ``I``)."""

    def __init__(self, network):
        super().__init__(network)
        self._host: Host = _TRIVIAL_HOST

    # ------------------------------------------------------------------
    # Host wiring
    # ------------------------------------------------------------------
    @property
    def host(self) -> Host:
        return self._host

    def attach(self, host: Host) -> None:
        """Called by SDR when this instance becomes its input algorithm."""
        self._host = host

    def detach(self) -> None:
        """Return to standalone mode (``P_Clean ≡ true``)."""
        self._host = _TRIVIAL_HOST

    def p_clean(self, cfg: Configuration, u: int) -> bool:
        """``P_Clean(u)`` as seen through the host."""
        return self._host.p_clean(cfg, u)

    # ------------------------------------------------------------------
    # The SDR contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def p_icorrect(self, cfg: Configuration, u: int) -> bool:
        """``P_ICorrect(u)``: ``u``'s ``I``-state is consistent locally.

        Must read only ``I``-variables of ``N[u]`` and be closed by ``I``.
        """

    @abc.abstractmethod
    def p_reset(self, cfg: Configuration, u: int) -> bool:
        """``P_reset(u)``: ``u`` is in the pre-defined initial ``I``-state.

        Must read only ``u``'s *own* ``I``-variables.
        """

    @abc.abstractmethod
    def reset_updates(self, cfg: Configuration, u: int) -> dict[str, Any]:
        """The macro ``reset(u)``: variable updates installing the
        pre-defined initial state.  After applying them (alone),
        ``P_reset(u)`` must hold (Requirement 2e)."""

    # ------------------------------------------------------------------
    # Array-backed kernel support
    # ------------------------------------------------------------------
    def input_rule_set(self):
        """Declarative IR definition of this input algorithm, or ``None``.

        Returns a :class:`repro.ir.rules.InputRuleSet` carrying, besides
        the rules, the ``P_ICorrect``/``P_reset`` predicate expressions
        and the ``reset(u)`` action — everything a reset host needs to
        compose with at the IR level.
        """
        return None

    def rule_set(self):
        """Standalone view: the input rule set itself (trivial host).

        Rules marked ``clean_gated`` run ungated when compiled from here,
        which is exactly the trivial host's ``P_Clean ≡ true``.
        """
        return self.input_rule_set()

    def kernel_input_program(self):
        """Schema-typed kernel port of this input algorithm, or ``None``.

        The default compiles :meth:`input_rule_set` into an
        :class:`~repro.core.kernel.programs.InputKernelProgram` exposing
        vectorized ``P_ICorrect`` / ``P_reset`` masks and ``reset(u)``
        column updates, which a reset host's kernel program composes
        with.  ``None`` means no rule set (or numpy missing): the
        simulator falls back to the dict backend.
        """
        rs = self.input_rule_set()
        return None if rs is None else rs.compile_input_kernel()

    def kernel_program(self):
        """Standalone kernel program (host ``P_Clean ≡ true``).

        Only available while detached from SDR: an attached input
        algorithm is simulated through its host's program instead.
        """
        if self._host is not _TRIVIAL_HOST and not isinstance(self._host, TrivialHost):
            return None
        prog = self.kernel_input_program()
        return None if prog is None else prog.as_standalone()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def all_icorrect(self, cfg: Configuration) -> bool:
        """Whether ``P_ICorrect`` holds at every process."""
        return all(self.p_icorrect(cfg, u) for u in self.network.processes())
